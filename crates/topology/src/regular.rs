//! Generators for (almost-)regular graphs.
//!
//! Kenthapadi & Panigrahi's Theorem 5 — the engine behind the paper's
//! Theorem 4 — concerns balanced allocation on *almost Δ-regular* graphs.
//! These generators provide exactly-regular instances (circulant, torus,
//! complete) and configuration-model random regular graphs so the baseline
//! can be exercised across densities.

use crate::graph::{CsrGraph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// Circulant graph `C_n(1, 2, …, k)`: node `i` is adjacent to `i ± j (mod
/// n)` for `j = 1..=k`, giving degree `2k` (for `2k < n`).
///
/// This is the standard dense-regular family used to probe the
/// `Δ = n^Ω(log log n / log n)` density threshold of Theorem 5.
///
/// # Panics
/// If `n < 3` or `2k ≥ n`.
pub fn circulant_graph(n: u32, k: u32) -> CsrGraph {
    assert!(n >= 3, "circulant graph needs n ≥ 3");
    assert!(2 * k < n, "circulant offset k={k} too large for n={n}");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for j in 1..=k {
            b.add_edge(v, (v + j) % n);
        }
    }
    b.build()
}

/// The 4-regular torus lattice graph on `side × side` nodes.
///
/// # Panics
/// If `side < 3` (smaller sides collapse to multi-edges).
pub fn torus_graph(side: u32) -> CsrGraph {
    assert!(side >= 3, "torus graph needs side ≥ 3");
    let t = crate::Torus::new(side);
    let mut b = GraphBuilder::new(t.n());
    for v in 0..t.n() {
        for w in t.neighbors4(v) {
            b.add_edge(v, w);
        }
    }
    b.build()
}

/// The complete graph `K_n` — the `r = ∞`, `M = K` limit in which the
/// paper's Strategy II degenerates to the classic two-choice process.
pub fn complete_graph(n: u32) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for a in 0..n {
        for bb in (a + 1)..n {
            b.add_edge(a, bb);
        }
    }
    b.build()
}

/// Random `d`-regular graph via the configuration model with restarts.
///
/// Draws a uniformly random perfect matching on `n·d` half-edges and
/// retries whenever the matching induces a self-loop or parallel edge
/// (Bollobás' method). For `d = O(1)` the acceptance probability is
/// `e^{-(d²-1)/4} = Ω(1)`, so a handful of restarts suffice; we cap
/// restarts and fall back to rejecting only the offending pairs (switching
/// repairs) to stay robust for larger `d`.
///
/// # Panics
/// If `n·d` is odd, `d ≥ n`, or `n == 0`.
pub fn random_regular_graph<R: Rng + ?Sized>(n: u32, d: u32, rng: &mut R) -> CsrGraph {
    assert!(n > 0, "empty graph");
    assert!(d < n, "degree must be < n");
    assert!((n as u64 * d as u64).is_multiple_of(2), "n·d must be even");
    if d == 0 {
        return GraphBuilder::new(n).build();
    }

    let stubs_len = (n as usize) * (d as usize);
    let mut stubs: Vec<u32> = (0..n)
        .flat_map(|v| std::iter::repeat_n(v, d as usize))
        .collect();
    debug_assert_eq!(stubs.len(), stubs_len);

    const MAX_RESTARTS: usize = 200;
    for _ in 0..MAX_RESTARTS {
        stubs.shuffle(rng);
        if let Some(g) = try_matching(n, &stubs) {
            return g;
        }
    }
    // Deterministic fallback: repair collisions via edge switches. Start
    // from a shuffled matching and swap stubs until simple.
    stubs.shuffle(rng);
    repair_matching(n, stubs, rng)
}

/// Attempt to realize the stub pairing as a simple graph.
fn try_matching(n: u32, stubs: &[u32]) -> Option<CsrGraph> {
    let mut b = GraphBuilder::new(n);
    for pair in stubs.chunks_exact(2) {
        let (a, c) = (pair[0], pair[1]);
        if a == c || !b.add_edge(a, c) {
            return None;
        }
    }
    Some(b.build())
}

/// Repair a stub pairing into a simple graph via random switches.
fn repair_matching<R: Rng + ?Sized>(n: u32, mut stubs: Vec<u32>, rng: &mut R) -> CsrGraph {
    use paba_util::FxHashSet;
    let pairs = stubs.len() / 2;
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let key = |a: u32, b: u32| if a < b { (a, b) } else { (b, a) };
    // Iterate until all pairs are simple; each switch strictly reduces the
    // number of conflicts in expectation, and conflicts are rare, so this
    // terminates fast in practice. A generous cap guards pathological input.
    let mut guard = 0u64;
    let cap = 1_000_000u64.max(stubs.len() as u64 * 100);
    loop {
        seen.clear();
        let mut conflict = None;
        for i in 0..pairs {
            let (a, b) = (stubs[2 * i], stubs[2 * i + 1]);
            if a == b || !seen.insert(key(a, b)) {
                conflict = Some(i);
                break;
            }
        }
        let Some(i) = conflict else { break };
        // Swap one stub of the conflicting pair with a random stub.
        let j = rng.gen_range(0..stubs.len());
        stubs.swap(2 * i + (rng.gen_range(0..2usize)), j);
        guard += 1;
        assert!(guard < cap, "regular-graph repair failed to converge");
    }
    let mut b = GraphBuilder::new(n);
    for pair in stubs.chunks_exact(2) {
        b.add_edge(pair[0], pair[1]);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn circulant_is_regular() {
        let g = circulant_graph(10, 3);
        for v in 0..g.n() {
            assert_eq!(g.degree(v), 6);
        }
        assert_eq!(g.m(), 30);
        assert!(g.is_connected());
    }

    #[test]
    fn circulant_adjacency_structure() {
        let g = circulant_graph(7, 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(0, 5)); // 0 - 2 mod 7
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn torus_graph_is_4_regular_and_connected() {
        let g = torus_graph(5);
        for v in 0..g.n() {
            assert_eq!(g.degree(v), 4);
        }
        assert_eq!(g.m(), 2 * 25);
        assert!(g.is_connected());
    }

    #[test]
    fn complete_graph_shape() {
        let g = complete_graph(6);
        assert_eq!(g.m(), 15);
        for v in 0..6 {
            assert_eq!(g.degree(v), 5);
        }
    }

    #[test]
    fn random_regular_has_exact_degrees() {
        let mut rng = SmallRng::seed_from_u64(3);
        for (n, d) in [(10u32, 3u32), (20, 4), (50, 6), (8, 7)] {
            let g = random_regular_graph(n, d, &mut rng);
            assert_eq!(g.n(), n);
            for v in 0..n {
                assert_eq!(g.degree(v), d, "n={n} d={d} v={v}");
            }
            // Simple graph: no self loop possible in CSR; check no dup
            // neighbors.
            for v in 0..n {
                let nb = g.neighbors(v);
                let mut u = nb.to_vec();
                u.dedup();
                assert_eq!(u.len(), nb.len());
                assert!(!nb.contains(&v));
            }
        }
    }

    #[test]
    fn random_regular_d0() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = random_regular_graph(5, 0, &mut rng);
        assert_eq!(g.m(), 0);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn random_regular_odd_product_panics() {
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = random_regular_graph(5, 3, &mut rng);
    }

    #[test]
    fn random_regular_varies_with_seed() {
        let g1 = random_regular_graph(30, 4, &mut SmallRng::seed_from_u64(1));
        let g2 = random_regular_graph(30, 4, &mut SmallRng::seed_from_u64(2));
        assert_ne!(g1, g2, "different seeds should give different graphs");
        let g1b = random_regular_graph(30, 4, &mut SmallRng::seed_from_u64(1));
        assert_eq!(g1, g1b, "same seed must reproduce the same graph");
    }
}
