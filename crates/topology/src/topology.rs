//! The [`Topology`] trait: the geometric interface the cache-network
//! strategies are generic over.
//!
//! Strategy code in `paba-core` only needs distances, neighborhood
//! enumeration, and uniform in-ball sampling, so both [`crate::Torus`]
//! (the paper's model) and [`crate::Grid`] (Remark 1 ablation) plug in.

use crate::NodeId;
use rand::Rng;

/// A finite 2D lattice topology with an integer hop metric.
///
/// All methods must be consistent: `for_each_in_ball(u, r)` visits exactly
/// the nodes `v` with `dist(u, v) ≤ r`, each once, and `ball_size_at`
/// counts them.
pub trait Topology: Clone + Send + Sync {
    /// Number of nodes.
    fn n(&self) -> u32;

    /// Side length of the underlying `side × side` lattice.
    fn side(&self) -> u32;

    /// Hop distance between two nodes.
    fn dist(&self, a: NodeId, b: NodeId) -> u32;

    /// Maximum distance between any two nodes.
    fn diameter(&self) -> u32;

    /// Number of nodes within distance `r` of `u` (including `u`).
    fn ball_size_at(&self, u: NodeId, r: u32) -> u64;

    /// Visit each node within distance `r` of `u` exactly once.
    fn for_each_in_ball<F: FnMut(NodeId)>(&self, u: NodeId, r: u32, f: F);

    /// Visit each node at distance exactly `d` from `u` exactly once.
    fn for_each_at_distance<F: FnMut(NodeId)>(&self, u: NodeId, d: u32, f: F);

    /// Visit each lattice neighbour (distance exactly 1) of `u` once.
    fn for_each_neighbor<F: FnMut(NodeId)>(&self, u: NodeId, f: F) {
        self.for_each_at_distance(u, 1, f);
    }

    /// Uniform random node within distance `r` of `u` (including `u`).
    fn sample_in_ball<R: Rng + ?Sized>(&self, u: NodeId, r: u32, rng: &mut R) -> NodeId;
}

impl Topology for crate::Torus {
    #[inline]
    fn n(&self) -> u32 {
        self.n()
    }

    #[inline]
    fn side(&self) -> u32 {
        self.side()
    }

    #[inline]
    fn dist(&self, a: NodeId, b: NodeId) -> u32 {
        self.dist(a, b)
    }

    #[inline]
    fn diameter(&self) -> u32 {
        self.diameter()
    }

    #[inline]
    fn ball_size_at(&self, _u: NodeId, r: u32) -> u64 {
        self.ball_size(r) // vertex-transitive: independent of u
    }

    #[inline]
    fn for_each_in_ball<F: FnMut(NodeId)>(&self, u: NodeId, r: u32, f: F) {
        self.for_each_in_ball(u, r, f)
    }

    #[inline]
    fn for_each_at_distance<F: FnMut(NodeId)>(&self, u: NodeId, d: u32, f: F) {
        self.for_each_at_distance(u, d, f)
    }

    #[inline]
    fn sample_in_ball<R: Rng + ?Sized>(&self, u: NodeId, r: u32, rng: &mut R) -> NodeId {
        self.sample_in_ball(u, r, rng)
    }
}

impl Topology for crate::Grid {
    #[inline]
    fn n(&self) -> u32 {
        self.n()
    }

    #[inline]
    fn side(&self) -> u32 {
        self.side()
    }

    #[inline]
    fn dist(&self, a: NodeId, b: NodeId) -> u32 {
        self.dist(a, b)
    }

    #[inline]
    fn diameter(&self) -> u32 {
        self.diameter()
    }

    #[inline]
    fn ball_size_at(&self, u: NodeId, r: u32) -> u64 {
        self.ball_size_at(u, r)
    }

    #[inline]
    fn for_each_in_ball<F: FnMut(NodeId)>(&self, u: NodeId, r: u32, f: F) {
        self.for_each_in_ball(u, r, f)
    }

    #[inline]
    fn for_each_at_distance<F: FnMut(NodeId)>(&self, u: NodeId, d: u32, f: F) {
        self.for_each_at_distance(u, d, f)
    }

    #[inline]
    fn sample_in_ball<R: Rng + ?Sized>(&self, u: NodeId, r: u32, rng: &mut R) -> NodeId {
        self.sample_in_ball(u, r, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Grid, Torus};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Generic consistency check usable with any Topology implementation.
    fn check_consistency<T: Topology>(t: &T) {
        let mut rng = SmallRng::seed_from_u64(11);
        for u in [0u32, t.n() / 3, t.n() - 1] {
            for r in [0u32, 1, 2, t.side(), t.diameter()] {
                let mut count = 0u64;
                t.for_each_in_ball(u, r, |v| {
                    assert!(t.dist(u, v) <= r);
                    count += 1;
                });
                assert_eq!(count, t.ball_size_at(u, r), "ball size mismatch");
                // ring nodes are exactly at distance d
                t.for_each_at_distance(u, r, |v| {
                    assert_eq!(t.dist(u, v), r);
                });
                let v = t.sample_in_ball(u, r, &mut rng);
                assert!(t.dist(u, v) <= r);
            }
        }
    }

    #[test]
    fn torus_satisfies_trait_contract() {
        check_consistency(&Torus::new(7));
        check_consistency(&Torus::new(4));
    }

    #[test]
    fn grid_satisfies_trait_contract() {
        check_consistency(&Grid::new(7));
        check_consistency(&Grid::new(4));
    }

    #[test]
    fn generic_function_compiles_over_both() {
        fn mean_deg<T: Topology>(t: &T) -> f64 {
            let mut total = 0u64;
            for u in 0..t.n() {
                total += t.ball_size_at(u, 1) - 1;
            }
            total as f64 / t.n() as f64
        }
        assert_eq!(mean_deg(&Torus::new(5)), 4.0);
        assert!(mean_deg(&Grid::new(5)) < 4.0); // boundary nodes lose edges
    }
}
