//! The [`Topology`] trait: the geometric interface the cache-network
//! strategies are generic over.
//!
//! Strategy code in `paba-core` only needs distances, neighborhood
//! enumeration, and uniform in-ball sampling, so both [`crate::Torus`]
//! (the paper's model) and [`crate::Grid`] (Remark 1 ablation) plug in.

use crate::coords::Coord;
use crate::NodeId;
use rand::Rng;

/// A finite 2D lattice topology with an integer hop metric.
///
/// All methods must be consistent: `for_each_in_ball(u, r)` visits exactly
/// the nodes `v` with `dist(u, v) ≤ r`, each once, and `ball_size_at`
/// counts them.
pub trait Topology: Clone + Send + Sync {
    /// Number of nodes.
    fn n(&self) -> u32;

    /// Side length of the underlying `side × side` lattice.
    fn side(&self) -> u32;

    /// Hop distance between two nodes.
    fn dist(&self, a: NodeId, b: NodeId) -> u32;

    /// Lattice coordinate of node `v`.
    ///
    /// Decode once, reuse many times: pair with [`Topology::dist_from`] on
    /// hot loops that measure one fixed origin against a stream of nodes.
    fn coord_of(&self, v: NodeId) -> Coord;

    /// Hop distance from an already-decoded coordinate to node `v`.
    ///
    /// Must satisfy `dist_from(coord_of(a), b) == dist(a, b)` for every
    /// pair of nodes. The point of taking a [`Coord`] instead of a
    /// [`NodeId`] is to let callers hoist the origin's div/mod coordinate
    /// decode out of per-candidate loops (replica scans, rejection
    /// sampling), where it otherwise dominates the distance check.
    fn dist_from(&self, from: Coord, v: NodeId) -> u32;

    /// Maximum distance between any two nodes.
    fn diameter(&self) -> u32;

    /// Number of nodes within distance `r` of `u` (including `u`).
    fn ball_size_at(&self, u: NodeId, r: u32) -> u64;

    /// Visit each node within distance `r` of `u` exactly once.
    fn for_each_in_ball<F: FnMut(NodeId)>(&self, u: NodeId, r: u32, f: F);

    /// Visit the maximal contiguous **node-id intervals** `[lo, hi]`
    /// (inclusive) that exactly cover `B_r(u)`, each node once.
    ///
    /// Node ids are row-major, so the ball is at most `2(2r + 1)`
    /// intervals. This lets callers intersect sorted node lists (e.g. a
    /// file's replica list) with a ball in `O(r log len)` binary searches
    /// plus contiguous reads, instead of `O(len)` or `O(|B_r|)`
    /// per-node membership checks.
    fn for_each_ball_id_range<F: FnMut(NodeId, NodeId)>(&self, u: NodeId, r: u32, f: F);

    /// The (at most two) maximal contiguous node-id ranges `[lo, hi]`
    /// covering every node whose row lies within distance `w` of `from`'s
    /// row. Must collapse to `[(0, n−1)]` once the band spans all rows —
    /// callers use that as the "everything scanned" terminator of
    /// expanding-band searches.
    fn row_band(&self, from: Coord, w: u32) -> [Option<(NodeId, NodeId)>; 2];

    /// Visit each node at distance exactly `d` from `u` exactly once.
    fn for_each_at_distance<F: FnMut(NodeId)>(&self, u: NodeId, d: u32, f: F);

    /// Visit each lattice neighbour (distance exactly 1) of `u` once.
    fn for_each_neighbor<F: FnMut(NodeId)>(&self, u: NodeId, f: F) {
        self.for_each_at_distance(u, 1, f);
    }

    /// Uniform random node within distance `r` of `u` (including `u`).
    fn sample_in_ball<R: Rng + ?Sized>(&self, u: NodeId, r: u32, rng: &mut R) -> NodeId;

    /// [`Topology::sample_in_ball`] from an already-decoded center
    /// coordinate — the per-trial primitive of rejection-sampling loops,
    /// which decode the center once and then draw many times.
    fn sample_in_ball_from<R: Rng + ?Sized>(&self, from: Coord, r: u32, rng: &mut R) -> NodeId;
}

impl Topology for crate::Torus {
    #[inline]
    fn n(&self) -> u32 {
        self.n()
    }

    #[inline]
    fn side(&self) -> u32 {
        self.side()
    }

    #[inline]
    fn dist(&self, a: NodeId, b: NodeId) -> u32 {
        self.dist(a, b)
    }

    #[inline]
    fn coord_of(&self, v: NodeId) -> Coord {
        self.coord(v)
    }

    #[inline]
    fn dist_from(&self, from: Coord, v: NodeId) -> u32 {
        self.dist_from(from, v)
    }

    #[inline]
    fn diameter(&self) -> u32 {
        self.diameter()
    }

    #[inline]
    fn ball_size_at(&self, _u: NodeId, r: u32) -> u64 {
        self.ball_size(r) // vertex-transitive: independent of u
    }

    #[inline]
    fn for_each_in_ball<F: FnMut(NodeId)>(&self, u: NodeId, r: u32, f: F) {
        self.for_each_in_ball(u, r, f)
    }

    #[inline]
    fn for_each_ball_id_range<F: FnMut(NodeId, NodeId)>(&self, u: NodeId, r: u32, f: F) {
        self.for_each_ball_id_range(u, r, f)
    }

    #[inline]
    fn row_band(&self, from: Coord, w: u32) -> [Option<(NodeId, NodeId)>; 2] {
        self.row_band(from, w)
    }

    #[inline]
    fn for_each_at_distance<F: FnMut(NodeId)>(&self, u: NodeId, d: u32, f: F) {
        self.for_each_at_distance(u, d, f)
    }

    #[inline]
    fn sample_in_ball<R: Rng + ?Sized>(&self, u: NodeId, r: u32, rng: &mut R) -> NodeId {
        self.sample_in_ball(u, r, rng)
    }

    #[inline]
    fn sample_in_ball_from<R: Rng + ?Sized>(&self, from: Coord, r: u32, rng: &mut R) -> NodeId {
        self.sample_in_ball_from(from, r, rng)
    }
}

impl Topology for crate::Grid {
    #[inline]
    fn n(&self) -> u32 {
        self.n()
    }

    #[inline]
    fn side(&self) -> u32 {
        self.side()
    }

    #[inline]
    fn dist(&self, a: NodeId, b: NodeId) -> u32 {
        self.dist(a, b)
    }

    #[inline]
    fn coord_of(&self, v: NodeId) -> Coord {
        self.coord(v)
    }

    #[inline]
    fn dist_from(&self, from: Coord, v: NodeId) -> u32 {
        self.dist_from(from, v)
    }

    #[inline]
    fn diameter(&self) -> u32 {
        self.diameter()
    }

    #[inline]
    fn ball_size_at(&self, u: NodeId, r: u32) -> u64 {
        self.ball_size_at(u, r)
    }

    #[inline]
    fn for_each_in_ball<F: FnMut(NodeId)>(&self, u: NodeId, r: u32, f: F) {
        self.for_each_in_ball(u, r, f)
    }

    #[inline]
    fn for_each_ball_id_range<F: FnMut(NodeId, NodeId)>(&self, u: NodeId, r: u32, f: F) {
        self.for_each_ball_id_range(u, r, f)
    }

    #[inline]
    fn row_band(&self, from: Coord, w: u32) -> [Option<(NodeId, NodeId)>; 2] {
        self.row_band(from, w)
    }

    #[inline]
    fn for_each_at_distance<F: FnMut(NodeId)>(&self, u: NodeId, d: u32, f: F) {
        self.for_each_at_distance(u, d, f)
    }

    #[inline]
    fn sample_in_ball<R: Rng + ?Sized>(&self, u: NodeId, r: u32, rng: &mut R) -> NodeId {
        self.sample_in_ball(u, r, rng)
    }

    #[inline]
    fn sample_in_ball_from<R: Rng + ?Sized>(&self, from: Coord, r: u32, rng: &mut R) -> NodeId {
        self.sample_in_ball_from(from, r, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Grid, Torus};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Generic consistency check usable with any Topology implementation.
    fn check_consistency<T: Topology>(t: &T) {
        let mut rng = SmallRng::seed_from_u64(11);
        for u in [0u32, t.n() / 3, t.n() - 1] {
            let cu = t.coord_of(u);
            for r in [0u32, 1, 2, t.side(), t.diameter()] {
                let mut count = 0u64;
                t.for_each_in_ball(u, r, |v| {
                    assert!(t.dist(u, v) <= r);
                    assert_eq!(t.dist_from(cu, v), t.dist(u, v), "dist_from mismatch");
                    count += 1;
                });
                assert_eq!(count, t.ball_size_at(u, r), "ball size mismatch");
                // Id-interval decomposition covers the same ball exactly.
                let mut from_ranges: Vec<NodeId> = Vec::new();
                t.for_each_ball_id_range(u, r, |lo, hi| {
                    assert!(lo <= hi, "u={u} r={r}: inverted range [{lo}, {hi}]");
                    from_ranges.extend(lo..=hi);
                });
                let mut from_ball: Vec<NodeId> = Vec::new();
                t.for_each_in_ball(u, r, |v| from_ball.push(v));
                from_ranges.sort_unstable();
                from_ball.sort_unstable();
                assert_eq!(from_ranges, from_ball, "u={u} r={r}: range decomposition");
                // Row bands cover exactly the nodes within row-distance r.
                let in_band: Vec<NodeId> = t
                    .row_band(cu, r)
                    .into_iter()
                    .flatten()
                    .flat_map(|(lo, hi)| lo..=hi)
                    .collect();
                let expect_band: Vec<NodeId> = (0..t.n())
                    .filter(|&v| {
                        let cv = t.coord_of(v);
                        // Row distance: project out the x axis entirely.
                        t.dist_from(Coord::new(cv.x, cu.y), v) <= r
                    })
                    .collect();
                let mut got_band = in_band.clone();
                got_band.sort_unstable();
                assert_eq!(got_band, expect_band, "u={u} w={r}: row band");
                // ring nodes are exactly at distance d
                t.for_each_at_distance(u, r, |v| {
                    assert_eq!(t.dist(u, v), r);
                });
                let v = t.sample_in_ball(u, r, &mut rng);
                assert!(t.dist(u, v) <= r);
                let v = t.sample_in_ball_from(cu, r, &mut rng);
                assert!(t.dist(u, v) <= r, "sample_in_ball_from left the ball");
            }
        }
    }

    #[test]
    fn torus_satisfies_trait_contract() {
        check_consistency(&Torus::new(7));
        check_consistency(&Torus::new(4));
    }

    #[test]
    fn grid_satisfies_trait_contract() {
        check_consistency(&Grid::new(7));
        check_consistency(&Grid::new(4));
    }

    #[test]
    fn generic_function_compiles_over_both() {
        fn mean_deg<T: Topology>(t: &T) -> f64 {
            let mut total = 0u64;
            for u in 0..t.n() {
                total += t.ball_size_at(u, 1) - 1;
            }
            total as f64 / t.n() as f64
        }
        assert_eq!(mean_deg(&Torus::new(5)), 4.0);
        assert!(mean_deg(&Grid::new(5)) < 4.0); // boundary nodes lose edges
    }
}
