//! The `√n × √n` torus: the paper's network model (§II-B, Remark 1).
//!
//! Nodes are lattice points with wrap-around in both axes; the hop metric is
//! L1 with per-axis wrapping. All neighborhood operations here are *exact*
//! for every radius, including the self-wrapping regime `2r ≥ side` (needed
//! because the experiments sweep `r` all the way to "no proximity
//! constraint", which the paper writes as `r = ∞ ≡ √n`).

use crate::coords::{residues_at, residues_within, wrap_offset, wrapped_delta, Coord};
use crate::NodeId;
use rand::Rng;

/// A 2D torus with `side × side` nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus {
    side: u32,
    n: u32,
}

impl Torus {
    /// Largest supported side length (`side² ≤ u32::MAX`).
    pub const MAX_SIDE: u32 = 46_340;

    /// Create a torus with the given side length.
    ///
    /// # Panics
    /// If `side` is zero or exceeds [`Torus::MAX_SIDE`].
    pub fn new(side: u32) -> Self {
        assert!(side >= 1, "torus side must be positive");
        assert!(
            side <= Self::MAX_SIDE,
            "torus side {side} exceeds MAX_SIDE {}",
            Self::MAX_SIDE
        );
        Self {
            side,
            n: side * side,
        }
    }

    /// Create a torus with `n` nodes; `n` must be a perfect square.
    ///
    /// # Panics
    /// If `n` is not a positive perfect square.
    pub fn from_nodes(n: u32) -> Self {
        // Compare in u64: near u32::MAX the rounded square root is 65536
        // and `side * side` would wrap to 0 in u32 arithmetic.
        let side = (n as f64).sqrt().round() as u64;
        assert!(
            side >= 1 && side * side == n as u64,
            "n={n} is not a positive perfect square"
        );
        Self::new(side as u32)
    }

    /// Side length `√n`.
    #[inline]
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Number of nodes `n = side²`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Graph diameter: `2⌊side/2⌋`.
    #[inline]
    pub fn diameter(&self) -> u32 {
        2 * (self.side / 2)
    }

    /// Coordinate of node `v`.
    #[inline]
    pub fn coord(&self, v: NodeId) -> Coord {
        debug_assert!(v < self.n);
        Coord::new(v % self.side, v / self.side)
    }

    /// Node at coordinate `c`.
    #[inline]
    pub fn node(&self, c: Coord) -> NodeId {
        debug_assert!(c.x < self.side && c.y < self.side);
        c.y * self.side + c.x
    }

    /// Hop distance: per-axis wrapped L1 metric.
    #[inline]
    pub fn dist(&self, a: NodeId, b: NodeId) -> u32 {
        let (ca, cb) = (self.coord(a), self.coord(b));
        wrapped_delta(ca.x, cb.x, self.side) + wrapped_delta(ca.y, cb.y, self.side)
    }

    /// Hop distance from an already-decoded coordinate `from` to node `v`.
    ///
    /// Equivalent to `dist(node(from), v)` but skips re-deriving `from`'s
    /// coordinate (a div + mod) — the win on loops that compare one fixed
    /// origin against many nodes.
    #[inline]
    pub fn dist_from(&self, from: Coord, v: NodeId) -> u32 {
        let cv = self.coord(v);
        wrapped_delta(from.x, cv.x, self.side) + wrapped_delta(from.y, cv.y, self.side)
    }

    /// Node reached from `v` by the (possibly negative, possibly large)
    /// lattice offset `(dx, dy)`, wrapping both axes.
    #[inline]
    pub fn offset(&self, v: NodeId, dx: i64, dy: i64) -> NodeId {
        let c = self.coord(v);
        let x = wrap_offset(c.x, dx, self.side);
        let y = wrap_offset(c.y, dy, self.side);
        self.node(Coord::new(x, y))
    }

    /// The four lattice neighbours of `v` (with duplicates on degenerate
    /// tori of side 1 or 2 — the multigraph view).
    #[inline]
    pub fn neighbors4(&self, v: NodeId) -> [NodeId; 4] {
        [
            self.offset(v, 1, 0),
            self.offset(v, -1, 0),
            self.offset(v, 0, 1),
            self.offset(v, 0, -1),
        ]
    }

    /// `|B_r(u)|`: number of nodes within distance `r` of any node
    /// (vertex-transitive, so it does not depend on `u`).
    ///
    /// Equals `2r(r+1) + 1` whenever `2r + 1 ≤ side` (paper's `Θ(r²)`), and
    /// saturates at `n` once `r ≥ diameter`.
    pub fn ball_size(&self, r: u32) -> u64 {
        let half = self.side / 2;
        let mut total = 0u64;
        for w in 0..=r.min(half) {
            let budget = r - w;
            total += residues_at(w, self.side) as u64 * residues_within(budget, self.side) as u64;
        }
        total
    }

    /// Number of nodes at distance exactly `d` from any node.
    ///
    /// Equals `4d` for `1 ≤ d` with `2d + 1 ≤ side`; `1` for `d = 0`.
    pub fn ring_size(&self, d: u32) -> u64 {
        let half = self.side / 2;
        let mut total = 0u64;
        for w in 0..=d.min(half) {
            let t = d - w;
            total += residues_at(w, self.side) as u64 * residues_at(t, self.side) as u64;
        }
        total
    }

    /// Visit every node of `B_r(u)` exactly once (including `u` itself).
    ///
    /// Allocation-free; correct for all radii (handles axis self-wrap).
    pub fn for_each_in_ball<F: FnMut(NodeId)>(&self, u: NodeId, r: u32, mut f: F) {
        let c = self.coord(u);
        let side = self.side;
        let half = side / 2;
        for w in 0..=r.min(half) {
            let budget = r - w;
            let xs = self.axis_residues(c.x, w);
            for x in xs.into_iter().flatten() {
                self.for_each_y_within(x, c.y, budget, &mut f);
            }
        }
    }

    /// Visit every node at distance exactly `d` from `u` exactly once.
    pub fn for_each_at_distance<F: FnMut(NodeId)>(&self, u: NodeId, d: u32, mut f: F) {
        let c = self.coord(u);
        let half = self.side / 2;
        for w in 0..=d.min(half) {
            let t = d - w;
            if residues_at(t, self.side) == 0 {
                continue;
            }
            let xs = self.axis_residues(c.x, w);
            for x in xs.into_iter().flatten() {
                let ys = self.axis_residues(c.y, t);
                for y in ys.into_iter().flatten() {
                    f(self.node(Coord::new(x, y)));
                }
            }
        }
    }

    /// Visit the maximal contiguous **node-id intervals** `[lo, hi]`
    /// (inclusive) that exactly cover `B_r(u)`, each node once.
    ///
    /// Node ids are row-major (`id = y·side + x`), so each lattice row's
    /// slice of the ball is one id interval (two when the x-window wraps);
    /// the ball decomposes into at most `2(2r + 1)` intervals. Sorted
    /// per-file replica lists can therefore be intersected with a ball via
    /// `O(r)` binary searches plus contiguous reads instead of a
    /// per-node membership scan — the backbone of the assignment-path
    /// window sampler in `paba-core`.
    pub fn for_each_ball_id_range<F: FnMut(NodeId, NodeId)>(&self, u: NodeId, r: u32, mut f: F) {
        let c = self.coord(u);
        let side = self.side;
        let half = side / 2;
        for w in 0..=r.min(half) {
            let budget = r - w;
            let ys = self.axis_residues(c.y, w);
            for y in ys.into_iter().flatten() {
                let row = y * side;
                if 2 * budget as u64 + 1 >= side as u64 {
                    f(row, row + side - 1);
                    continue;
                }
                let xlo = wrap_offset(c.x, -(budget as i64), side);
                let xhi = wrap_offset(c.x, budget as i64, side);
                if xlo <= xhi {
                    f(row + xlo, row + xhi);
                } else {
                    // x-window wraps the seam: two disjoint intervals.
                    f(row, row + xhi);
                    f(row + xlo, row + side - 1);
                }
            }
        }
    }

    /// The (at most two) maximal contiguous node-id ranges `[lo, hi]`
    /// covering every node whose **row** lies within wrapped distance `w`
    /// of `from`'s row — the whole torus collapses to `[(0, n−1)]` once
    /// `2w + 1 ≥ side`.
    ///
    /// Used by the expanding-band nearest-replica search: replicas outside
    /// the band are at distance `> w`, so a best-so-far `≤ w` is globally
    /// optimal.
    pub fn row_band(&self, from: Coord, w: u32) -> [Option<(NodeId, NodeId)>; 2] {
        let side = self.side;
        if 2 * w as u64 + 1 >= side as u64 {
            return [Some((0, self.n - 1)), None];
        }
        let ylo = wrap_offset(from.y, -(w as i64), side);
        let yhi = wrap_offset(from.y, w as i64, side);
        if ylo <= yhi {
            [Some((ylo * side, (yhi + 1) * side - 1)), None]
        } else {
            [
                Some((0, (yhi + 1) * side - 1)),
                Some((ylo * side, self.n - 1)),
            ]
        }
    }

    /// Collect `B_r(u)` into a vector (testing / analysis convenience).
    pub fn ball_nodes(&self, u: NodeId, r: u32) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.ball_size(r) as usize);
        self.for_each_in_ball(u, r, |v| out.push(v));
        out
    }

    /// Collect the distance-`d` ring around `u` into a vector.
    pub fn ring_nodes(&self, u: NodeId, d: u32) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.ring_size(d) as usize);
        self.for_each_at_distance(u, d, |v| out.push(v));
        out
    }

    /// Uniform random node of `B_r(u)` (including `u`).
    ///
    /// Uses diamond rejection sampling in the non-wrapping regime
    /// (acceptance ≈ ½) and whole-torus rejection once the ball covers at
    /// least ~half the torus, so expected work is O(1) for every radius.
    pub fn sample_in_ball<R: Rng + ?Sized>(&self, u: NodeId, r: u32, rng: &mut R) -> NodeId {
        if r == 0 || self.n == 1 {
            return u;
        }
        let side = self.side as u64;
        if (2 * r as u64) < side {
            // Diamond |dx|+|dy| ≤ r is injective: reject from the square.
            // (Checked first so the hot non-wrapping path never pays the
            // O(r) `ball_size` evaluation below.)
            let ri = r as i64;
            loop {
                let dx = rng.gen_range(-ri..=ri);
                let dy = rng.gen_range(-ri..=ri);
                if dx.abs() + dy.abs() <= ri {
                    return self.offset(u, dx, dy);
                }
            }
        }
        if self.ball_size(r) == self.n as u64 {
            return rng.gen_range(0..self.n);
        }
        // Large ball: reject from the whole torus (acceptance ≥ ~½ here).
        loop {
            let v = rng.gen_range(0..self.n);
            if self.dist(u, v) <= r {
                return v;
            }
        }
    }

    /// [`Torus::sample_in_ball`] from an already-decoded center coordinate.
    ///
    /// Rejection-sampling loops call this once per trial, so it avoids
    /// both the center's div/mod decode and the `rem_euclid` divisions of
    /// the generic `offset` wrap: `|dx|, |dy| ≤ r < side` in the diamond
    /// regime, so a compare-and-add wraps each axis.
    pub fn sample_in_ball_from<R: Rng + ?Sized>(&self, c: Coord, r: u32, rng: &mut R) -> NodeId {
        if 0 < r && (2 * r as u64) < self.side as u64 {
            let side = self.side as i64;
            let ri = r as i64;
            loop {
                let dx = rng.gen_range(-ri..=ri);
                let dy = rng.gen_range(-ri..=ri);
                if dx.abs() + dy.abs() > ri {
                    continue;
                }
                let mut x = c.x as i64 + dx;
                if x < 0 {
                    x += side;
                } else if x >= side {
                    x -= side;
                }
                let mut y = c.y as i64 + dy;
                if y < 0 {
                    y += side;
                } else if y >= side {
                    y -= side;
                }
                return y as u32 * self.side + x as u32;
            }
        }
        self.sample_in_ball(self.node(c), r, rng)
    }

    /// Exact mean hop distance between a uniform ordered pair of nodes.
    ///
    /// This is the communication cost of serving every request from a
    /// uniformly random server — the `Θ(√n)` reference line of Figure 4.
    pub fn mean_pair_distance(&self) -> f64 {
        // Independent per axis: E[d] = 2 · E[wrapped_delta].
        let s = self.side as u64;
        let mut sum = 0u64;
        for o in 0..self.side {
            sum += wrapped_delta(0, o, self.side) as u64;
        }
        2.0 * (sum as f64 / s as f64)
    }

    /// The (one or two) x/y-axis residues at wrapped distance exactly `w`
    /// from residue `a`. Returned as two options to stay allocation-free.
    #[inline]
    fn axis_residues(&self, a: u32, w: u32) -> [Option<u32>; 2] {
        match residues_at(w, self.side) {
            0 => [None, None],
            1 => [Some(wrap_offset(a, w as i64, self.side)), None],
            _ => [
                Some(wrap_offset(a, w as i64, self.side)),
                Some(wrap_offset(a, -(w as i64), self.side)),
            ],
        }
    }

    /// Visit all nodes with x-coordinate `x` whose y-coordinate is within
    /// wrapped distance `b` of `cy`.
    #[inline]
    fn for_each_y_within<F: FnMut(NodeId)>(&self, x: u32, cy: u32, b: u32, f: &mut F) {
        let side = self.side;
        if 2 * b as u64 + 1 >= side as u64 {
            for y in 0..side {
                f(self.node(Coord::new(x, y)));
            }
            return;
        }
        let bi = b as i64;
        for dy in -bi..=bi {
            let y = wrap_offset(cy, dy, side);
            f(self.node(Coord::new(x, y)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn brute_ball(t: &Torus, u: NodeId, r: u32) -> Vec<NodeId> {
        (0..t.n()).filter(|&v| t.dist(u, v) <= r).collect()
    }

    fn brute_ring(t: &Torus, u: NodeId, d: u32) -> Vec<NodeId> {
        (0..t.n()).filter(|&v| t.dist(u, v) == d).collect()
    }

    #[test]
    fn construction_and_indexing() {
        let t = Torus::new(5);
        assert_eq!(t.n(), 25);
        assert_eq!(t.side(), 5);
        for v in 0..t.n() {
            assert_eq!(t.node(t.coord(v)), v);
        }
    }

    #[test]
    fn from_nodes_accepts_squares() {
        assert_eq!(Torus::from_nodes(2025).side(), 45);
        assert_eq!(Torus::from_nodes(1).side(), 1);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn from_nodes_rejects_non_squares() {
        let _ = Torus::from_nodes(2026);
    }

    #[test]
    fn metric_axioms_small_tori() {
        for side in 1..=6u32 {
            let t = Torus::new(side);
            for a in 0..t.n() {
                assert_eq!(t.dist(a, a), 0);
                for b in 0..t.n() {
                    assert_eq!(t.dist(a, b), t.dist(b, a));
                    if a != b {
                        assert!(t.dist(a, b) > 0);
                    }
                    for c in 0..t.n() {
                        assert!(t.dist(a, c) <= t.dist(a, b) + t.dist(b, c));
                    }
                }
            }
        }
    }

    #[test]
    fn distance_bounded_by_diameter() {
        for side in 1..=8u32 {
            let t = Torus::new(side);
            let max = (0..t.n())
                .flat_map(|a| (0..t.n()).map(move |b| (a, b)))
                .map(|(a, b)| t.dist(a, b))
                .max()
                .unwrap();
            assert_eq!(max, t.diameter(), "side={side}");
        }
    }

    #[test]
    fn ball_enumeration_matches_bruteforce_all_radii() {
        for side in 1..=7u32 {
            let t = Torus::new(side);
            for u in [0, t.n() / 2, t.n() - 1] {
                for r in 0..=(2 * side) {
                    let mut got = t.ball_nodes(u, r);
                    got.sort_unstable();
                    let expect = brute_ball(&t, u, r);
                    assert_eq!(got, expect, "side={side} u={u} r={r}");
                    assert_eq!(
                        t.ball_size(r),
                        expect.len() as u64,
                        "size side={side} r={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_enumeration_matches_bruteforce_all_radii() {
        for side in 1..=7u32 {
            let t = Torus::new(side);
            for u in [0, t.n() - 1] {
                for d in 0..=(2 * side) {
                    let mut got = t.ring_nodes(u, d);
                    got.sort_unstable();
                    let expect = brute_ring(&t, u, d);
                    assert_eq!(got, expect, "side={side} u={u} d={d}");
                    assert_eq!(t.ring_size(d), expect.len() as u64);
                }
            }
        }
    }

    #[test]
    fn ball_size_formula_in_nonwrapping_regime() {
        // |B_r| = 2r(r+1)+1 whenever 2r+1 ≤ side (paper §II / Lemma 3).
        for side in [9u32, 15, 45] {
            let t = Torus::new(side);
            for r in 0..=(side - 1) / 2 {
                assert_eq!(
                    t.ball_size(r),
                    2 * r as u64 * (r as u64 + 1) + 1,
                    "side={side} r={r}"
                );
            }
        }
    }

    #[test]
    fn ring_size_is_4d_in_nonwrapping_regime() {
        let t = Torus::new(31);
        assert_eq!(t.ring_size(0), 1);
        for d in 1..=15 {
            assert_eq!(t.ring_size(d), 4 * d as u64);
        }
    }

    #[test]
    fn ball_saturates_at_n() {
        let t = Torus::new(6);
        assert_eq!(t.ball_size(t.diameter()), t.n() as u64);
        assert_eq!(t.ball_size(100), t.n() as u64);
        let all = t.ball_nodes(3, 100);
        assert_eq!(all.len(), t.n() as usize);
    }

    #[test]
    fn neighbors4_at_distance_one() {
        let t = Torus::new(5);
        for v in 0..t.n() {
            for w in t.neighbors4(v) {
                assert_eq!(t.dist(v, w), 1);
            }
        }
    }

    #[test]
    fn offset_wraps_correctly() {
        let t = Torus::new(4);
        let v = t.node(Coord::new(0, 0));
        assert_eq!(t.coord(t.offset(v, -1, -1)), Coord::new(3, 3));
        assert_eq!(t.coord(t.offset(v, 9, 2)), Coord::new(1, 2));
    }

    #[test]
    fn sample_in_ball_stays_in_ball_and_covers_it() {
        let t = Torus::new(9);
        let mut rng = SmallRng::seed_from_u64(42);
        for r in [0u32, 1, 2, 4, 5, 8, 20] {
            let u = 40;
            let ball: std::collections::HashSet<NodeId> = t.ball_nodes(u, r).into_iter().collect();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..2000 {
                let v = t.sample_in_ball(u, r, &mut rng);
                assert!(ball.contains(&v), "r={r} sampled outside ball");
                seen.insert(v);
            }
            assert_eq!(seen.len(), ball.len(), "r={r}: sampler missed nodes");
        }
    }

    #[test]
    fn sample_in_ball_is_roughly_uniform() {
        let t = Torus::new(15);
        let mut rng = SmallRng::seed_from_u64(7);
        let u = 0;
        let r = 3;
        let ball = t.ball_nodes(u, r);
        let trials = 50_000usize;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..trials {
            *counts
                .entry(t.sample_in_ball(u, r, &mut rng))
                .or_insert(0usize) += 1;
        }
        let expect = trials as f64 / ball.len() as f64;
        for v in ball {
            let c = counts.get(&v).copied().unwrap_or(0) as f64;
            assert!(
                (c - expect).abs() < 5.0 * expect.sqrt() + 1.0,
                "node {v}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn sample_in_ball_from_is_roughly_uniform() {
        let t = Torus::new(15);
        let mut rng = SmallRng::seed_from_u64(9);
        let u = 31;
        let c = t.coord(u);
        for r in [2u32, 4, 7, 12, 20] {
            let ball = t.ball_nodes(u, r);
            let trials = 4_000 * ball.len();
            let mut counts = std::collections::HashMap::new();
            for _ in 0..trials {
                *counts
                    .entry(t.sample_in_ball_from(c, r, &mut rng))
                    .or_insert(0usize) += 1;
            }
            let expect = trials as f64 / ball.len() as f64;
            for v in ball {
                let got = counts.get(&v).copied().unwrap_or(0) as f64;
                assert!(
                    (got - expect).abs() < 5.0 * expect.sqrt() + 1.0,
                    "r={r} node {v}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn mean_pair_distance_matches_bruteforce() {
        for side in [1u32, 2, 3, 4, 5, 8] {
            let t = Torus::new(side);
            let mut sum = 0u64;
            for a in 0..t.n() {
                for b in 0..t.n() {
                    sum += t.dist(a, b) as u64;
                }
            }
            let brute = sum as f64 / (t.n() as f64 * t.n() as f64);
            assert!(
                (t.mean_pair_distance() - brute).abs() < 1e-12,
                "side={side}: {} vs {brute}",
                t.mean_pair_distance()
            );
        }
    }

    #[test]
    fn degenerate_single_node_torus() {
        let t = Torus::new(1);
        assert_eq!(t.dist(0, 0), 0);
        assert_eq!(t.ball_size(0), 1);
        assert_eq!(t.ball_size(5), 1);
        assert_eq!(t.ball_nodes(0, 3), vec![0]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(t.sample_in_ball(0, 2, &mut rng), 0);
    }
}
