//! Environment-variable configuration shared by the bench harnesses.
//!
//! Every experiment binary honours the same three knobs so a user can scale
//! any figure up to the paper's full replication counts without editing
//! code:
//!
//! * `PABA_RUNS`  — override the number of Monte-Carlo runs per point.
//! * `PABA_SEED`  — master seed (default 20170529, the IPDPS 2017 opening
//!   date, because every reproduction deserves a memorable seed).
//! * `PABA_SCALE` — `quick` (CI-sized), `default`, or `full` (paper-sized
//!   parameter grids).
//!
//! The *statistical integration tests* additionally honour
//! `PABA_TEST_RUNS` (see [`test_runs`]): CI's quick tier can shrink their
//! seed counts while nightly runs the full tier, without editing tests.

use std::str::FromStr;

/// Default master seed used across the workspace.
#[allow(clippy::inconsistent_digit_grouping)] // 2017-05-29: IPDPS 2017 opening day
pub const DEFAULT_SEED: u64 = 2017_05_29;

/// Experiment scale selected via `PABA_SCALE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scale {
    /// Tiny grids for smoke-testing the harnesses (seconds).
    Quick,
    /// Grids that show every qualitative effect in minutes.
    #[default]
    Default,
    /// The paper's exact parameter grids and replication counts.
    Full,
}

impl FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "quick" | "smoke" | "ci" => Ok(Scale::Quick),
            "default" | "" => Ok(Scale::Default),
            "full" | "paper" => Ok(Scale::Full),
            other => Err(format!(
                "unknown PABA_SCALE '{other}' (expected quick|default|full)"
            )),
        }
    }
}

/// Parsed experiment environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnvCfg {
    /// Master seed (`PABA_SEED`, default [`DEFAULT_SEED`]).
    pub seed: u64,
    /// Optional run-count override (`PABA_RUNS`).
    pub runs_override: Option<usize>,
    /// Grid scale (`PABA_SCALE`, default [`Scale::Default`]).
    pub scale: Scale,
}

impl EnvCfg {
    /// Read configuration from the process environment.
    ///
    /// Malformed values fall back to defaults with a note on stderr rather
    /// than aborting a long bench suite.
    pub fn from_env() -> Self {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// Testable constructor: reads via the provided lookup function.
    pub fn from_lookup<F: Fn(&str) -> Option<String>>(lookup: F) -> Self {
        let seed = lookup("PABA_SEED")
            .and_then(|v| match v.parse::<u64>() {
                Ok(s) => Some(s),
                Err(_) => {
                    eprintln!("paba: ignoring malformed PABA_SEED='{v}'");
                    None
                }
            })
            .unwrap_or(DEFAULT_SEED);
        let runs_override = lookup("PABA_RUNS").and_then(|v| match v.parse::<usize>() {
            Ok(r) if r > 0 => Some(r),
            _ => {
                eprintln!("paba: ignoring malformed PABA_RUNS='{v}'");
                None
            }
        });
        let scale = lookup("PABA_SCALE")
            .and_then(|v| match v.parse::<Scale>() {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("paba: {e}; using default scale");
                    None
                }
            })
            .unwrap_or_default();
        Self {
            seed,
            runs_override,
            scale,
        }
    }

    /// Resolve the run count: the override if present, otherwise the
    /// scale-appropriate choice among `(quick, default, full)`.
    pub fn runs(&self, quick: usize, default: usize, full: usize) -> usize {
        self.runs_override.unwrap_or(match self.scale {
            Scale::Quick => quick,
            Scale::Default => default,
            Scale::Full => full,
        })
    }

    /// Pick a grid by scale (convenience mirroring [`EnvCfg::runs`]).
    pub fn pick<T: Clone>(&self, quick: T, default: T, full: T) -> T {
        match self.scale {
            Scale::Quick => quick,
            Scale::Default => default,
            Scale::Full => full,
        }
    }
}

/// Seed count for a statistical integration test: `PABA_TEST_RUNS` when
/// set to a positive integer, otherwise the test's built-in `default`.
///
/// The statistical tests average a qualitative ordering over enough seeds
/// that a correct implementation fails with negligible probability; this
/// knob lets CI's quick tier trade confidence for wall-clock (and nightly
/// crank it the other way) without touching the defaults.
pub fn test_runs(default: u64) -> u64 {
    test_runs_from(default, |k| std::env::var(k).ok())
}

/// Testable core of [`test_runs`].
pub fn test_runs_from<F: Fn(&str) -> Option<String>>(default: u64, lookup: F) -> u64 {
    match lookup("PABA_TEST_RUNS") {
        None => default,
        Some(v) => match v.parse::<u64>() {
            Ok(r) if r > 0 => r,
            _ => {
                eprintln!("paba: ignoring malformed PABA_TEST_RUNS='{v}'");
                default
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup_from<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |k| {
            pairs
                .iter()
                .find(|(key, _)| *key == k)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn defaults_when_unset() {
        let cfg = EnvCfg::from_lookup(|_| None);
        assert_eq!(cfg.seed, DEFAULT_SEED);
        assert_eq!(cfg.runs_override, None);
        assert_eq!(cfg.scale, Scale::Default);
    }

    #[test]
    fn parses_all_fields() {
        let cfg = EnvCfg::from_lookup(lookup_from(&[
            ("PABA_SEED", "99"),
            ("PABA_RUNS", "1234"),
            ("PABA_SCALE", "full"),
        ]));
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.runs_override, Some(1234));
        assert_eq!(cfg.scale, Scale::Full);
    }

    #[test]
    fn malformed_values_fall_back() {
        let cfg = EnvCfg::from_lookup(lookup_from(&[
            ("PABA_SEED", "not-a-number"),
            ("PABA_RUNS", "0"),
            ("PABA_SCALE", "humongous"),
        ]));
        assert_eq!(cfg.seed, DEFAULT_SEED);
        assert_eq!(cfg.runs_override, None);
        assert_eq!(cfg.scale, Scale::Default);
    }

    #[test]
    fn runs_resolution() {
        let with_override = EnvCfg {
            seed: 1,
            runs_override: Some(7),
            scale: Scale::Full,
        };
        assert_eq!(with_override.runs(1, 10, 100), 7);
        let by_scale = EnvCfg {
            seed: 1,
            runs_override: None,
            scale: Scale::Full,
        };
        assert_eq!(by_scale.runs(1, 10, 100), 100);
    }

    #[test]
    fn scale_aliases() {
        assert_eq!("ci".parse::<Scale>().unwrap(), Scale::Quick);
        assert_eq!("paper".parse::<Scale>().unwrap(), Scale::Full);
        assert!("nope".parse::<Scale>().is_err());
    }

    #[test]
    fn test_runs_override_and_fallback() {
        assert_eq!(test_runs_from(24, |_| None), 24);
        assert_eq!(
            test_runs_from(24, lookup_from(&[("PABA_TEST_RUNS", "6")])),
            6
        );
        assert_eq!(
            test_runs_from(24, lookup_from(&[("PABA_TEST_RUNS", "0")])),
            24
        );
        assert_eq!(
            test_runs_from(24, lookup_from(&[("PABA_TEST_RUNS", "lots")])),
            24
        );
    }

    #[test]
    fn pick_by_scale() {
        let cfg = EnvCfg {
            seed: 0,
            runs_override: None,
            scale: Scale::Quick,
        };
        assert_eq!(cfg.pick(vec![1], vec![2], vec![3]), vec![1]);
    }
}
