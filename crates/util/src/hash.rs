//! FxHash-style hashing: a fast, non-cryptographic hasher for small keys.
//!
//! The algorithm is the one popularized by rustc's `FxHasher`: multiply by a
//! 64-bit constant derived from the golden ratio and rotate between words.
//! It is a poor choice for adversarial input but excellent for the integer
//! node/file identifiers used throughout this workspace, where it is several
//! times faster than the standard library's SipHash 1-3.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit golden-ratio multiplier (`floor(2^64 / φ)`, forced odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast FxHash-style streaming hasher.
///
/// ```
/// use std::hash::{Hash, Hasher};
/// let mut h = paba_util::FxHasher::default();
/// 42u32.hash(&mut h);
/// let a = h.finish();
/// let mut h = paba_util::FxHasher::default();
/// 42u32.hash(&mut h);
/// assert_eq!(a, h.finish());
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Hash 8 bytes at a time, then the ragged tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = 0u64;
            for (i, &b) in tail.iter().enumerate() {
                word |= (b as u64) << (8 * i);
            }
            self.add_to_hash(word);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`]. Drop-in for `std::collections::HashMap`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`]. Drop-in for `std::collections::HashSet`.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_one(123u64), hash_one(123u64));
        assert_eq!(hash_one("hello"), hash_one("hello"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        // Not a collision-resistance claim, just a smoke check that the
        // multiplier diffuses low bits.
        let h: Vec<u64> = (0u64..64).map(hash_one).collect();
        let mut sorted = h.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), h.len(), "nearby ints must not collide");
    }

    #[test]
    fn ragged_tail_bytes_hash_differently() {
        assert_ne!(hash_one([1u8, 2, 3]), hash_one([1u8, 2, 4]));
        assert_ne!(hash_one([0u8; 9]), hash_one([0u8; 10]));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        m.insert(1, 2);
        assert_eq!(m.get(&1), Some(&2));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((3, 4)));
        assert!(!s.insert((3, 4)));
    }

    #[test]
    fn u32_pairs_spread_over_buckets() {
        // Insert a grid of (u, v) edge keys and check bucket occupancy is
        // not catastrophically skewed (would signal a broken mix).
        const BUCKETS: usize = 64;
        let mut counts = [0usize; BUCKETS];
        for u in 0u32..64 {
            for v in 0u32..64 {
                let h = hash_one((u, v));
                counts[(h % BUCKETS as u64) as usize] += 1;
            }
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(min > 0, "some bucket empty: {counts:?}");
        assert!(max < 4096 / 8, "bucket too heavy: {max}");
    }
}
