//! Fixed-bucket integer histograms.
//!
//! Load distributions in the paper's experiments are small non-negative
//! integers (a server's load rarely exceeds a few dozen), so a dense
//! `Vec<u64>` of counts indexed by value is the right representation: O(1)
//! increment, trivial merging across Monte-Carlo workers, exact quantiles.

/// Dense histogram over non-negative integer observations.
///
/// Values beyond the current capacity grow the bucket vector on demand, so
/// the histogram is exact for any input.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty histogram with buckets preallocated for values `< capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            counts: vec![0; capacity],
            total: 0,
        }
    }

    /// Record one observation of `value`.
    #[inline]
    pub fn record(&mut self, value: usize) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Record `weight` observations of `value`.
    pub fn record_n(&mut self, value: usize, weight: u64) {
        if weight == 0 {
            return;
        }
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += weight;
        self.total += weight;
    }

    /// Merge another histogram into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.total += other.total;
    }

    /// Total number of observations.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of observations equal to `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Largest observed value (`None` when empty).
    pub fn max_value(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Smallest observed value (`None` when empty).
    pub fn min_value(&self) -> Option<usize> {
        self.counts.iter().position(|&c| c > 0)
    }

    /// Mean of the observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let weighted: u128 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u128 * c as u128)
            .sum();
        weighted as f64 / self.total as f64
    }

    /// Exact `q`-quantile (`0 ≤ q ≤ 1`) under the "lower value at cut"
    /// convention; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // rank in [1, total]
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (value, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(value);
            }
        }
        self.max_value()
    }

    /// Iterator over `(value, count)` pairs with nonzero count.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }

    /// log₂ bucket index for `value`: bucket 0 holds the value 0, bucket
    /// `b ≥ 1` holds `[2^(b-1), 2^b)`. Used to fold wide-range
    /// observations (nanosecond spans) into a small dense histogram;
    /// `log2_bucket(u64::MAX) = 64`, so 65 buckets cover all of `u64`.
    #[inline]
    pub fn log2_bucket(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (63 - value.leading_zeros() as usize) + 1
        }
    }

    /// Compact JSON summary `{"count":…,"mean":…,"p50":…,"p99":…,"max":…}`
    /// shared by the telemetry snapshots and BENCH artifact writers.
    /// Statistics of an empty histogram serialize as `null`.
    pub fn summary_json(&self) -> String {
        let mean = if self.total == 0 {
            "null".to_string()
        } else {
            let m = self.mean();
            if m.is_finite() {
                format!("{m}")
            } else {
                "null".to_string()
            }
        };
        let opt = |v: Option<usize>| v.map_or("null".to_string(), |v| v.to_string());
        format!(
            "{{\"count\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
            self.total,
            mean,
            opt(self.quantile(0.5)),
            opt(self.quantile(0.99)),
            opt(self.max_value()),
        )
    }

    /// Fraction of observations with value `>= threshold`.
    pub fn tail_fraction(&self, threshold: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let tail: u64 = self.counts.iter().skip(threshold).sum();
        tail as f64 / self.total as f64
    }
}

impl Extend<usize> for Histogram {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<usize> for Histogram {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut h = Self::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.min_value(), None);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.mean().is_nan());
    }

    #[test]
    fn record_and_count() {
        let h: Histogram = [3usize, 1, 3, 3, 0].into_iter().collect();
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.min_value(), Some(0));
        assert_eq!(h.max_value(), Some(3));
    }

    #[test]
    fn mean_matches_direct() {
        let vals = [5usize, 7, 7, 9, 2];
        let h: Histogram = vals.into_iter().collect();
        let direct = vals.iter().sum::<usize>() as f64 / vals.len() as f64;
        assert!((h.mean() - direct).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let h: Histogram = (1..=100usize).collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    fn merge_matches_union() {
        let a: Histogram = [1usize, 2, 2, 8].into_iter().collect();
        let b: Histogram = [0usize, 2, 9, 9].into_iter().collect();
        let mut m = a.clone();
        m.merge(&b);
        let u: Histogram = [1usize, 2, 2, 8, 0, 2, 9, 9].into_iter().collect();
        assert_eq!(m, u);
    }

    #[test]
    fn tail_fraction() {
        let h: Histogram = [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9].into_iter().collect();
        assert!((h.tail_fraction(5) - 0.5).abs() < 1e-12);
        assert!((h.tail_fraction(0) - 1.0).abs() < 1e-12);
        assert_eq!(h.tail_fraction(10), 0.0);
    }

    #[test]
    fn log2_bucket_boundaries() {
        assert_eq!(Histogram::log2_bucket(0), 0);
        assert_eq!(Histogram::log2_bucket(1), 1);
        assert_eq!(Histogram::log2_bucket(2), 2);
        assert_eq!(Histogram::log2_bucket(3), 2);
        assert_eq!(Histogram::log2_bucket(4), 3);
        assert_eq!(Histogram::log2_bucket(1023), 10);
        assert_eq!(Histogram::log2_bucket(1024), 11);
        assert_eq!(Histogram::log2_bucket(u64::MAX), 64);
        // Every bucket's lower bound maps back to that bucket.
        for b in 1..64usize {
            assert_eq!(Histogram::log2_bucket(1u64 << (b - 1)), b);
            assert_eq!(Histogram::log2_bucket((1u64 << b) - 1), b);
        }
    }

    #[test]
    fn summary_json_roundtrips_stats() {
        let h: Histogram = (1..=100usize).collect();
        let json = h.summary_json();
        assert!(json.contains("\"count\":100"));
        assert!(json.contains("\"mean\":50.5"));
        assert!(json.contains("\"p50\":50"));
        assert!(json.contains("\"p99\":99"));
        assert!(json.contains("\"max\":100"));
    }

    #[test]
    fn summary_json_empty_is_null() {
        let json = Histogram::new().summary_json();
        assert_eq!(
            json,
            "{\"count\":0,\"mean\":null,\"p50\":null,\"p99\":null,\"max\":null}"
        );
    }

    #[test]
    fn record_n_weighted() {
        let mut h = Histogram::with_capacity(4);
        h.record_n(2, 10);
        h.record_n(0, 5);
        h.record_n(7, 0);
        assert_eq!(h.total(), 15);
        assert_eq!(h.count(2), 10);
        assert_eq!(h.count(7), 0);
        assert_eq!(h.max_value(), Some(2));
    }

    #[test]
    fn iter_skips_zeros() {
        let h: Histogram = [0usize, 5].into_iter().collect();
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (5, 1)]);
    }
}
