//! Hand-rolled JSON *emission* helpers.
//!
//! The workspace writes every artifact (repro goldens, bench profiles,
//! trace dumps) as hand-formatted JSON — no serde, per the no-new-deps
//! policy. These two helpers are the only shared pieces: everything else
//! is plain `format!` at the call site, which keeps each artifact's schema
//! readable where it is produced. The matching reader lives in
//! `paba_repro::json` (recursive-descent parser).

/// Escape a string for embedding in a JSON document (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number; non-finite values become `null`.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn num_maps_non_finite_to_null() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
