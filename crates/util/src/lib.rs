//! Measurement plumbing shared by every crate in the `paba` workspace.
//!
//! This crate is dependency-free (std only) and hosts the small, hot
//! utilities the simulators and experiment harnesses lean on:
//!
//! * [`hash`] — an FxHash-style 64-bit hasher for integer-keyed maps/sets
//!   (the default SipHash is needlessly slow for `u32`/`u64` node ids).
//! * [`rng`] — SplitMix64 seed derivation so parallel Monte-Carlo runs are
//!   deterministic regardless of thread scheduling.
//! * [`stats`] — Welford online mean/variance and summary types.
//! * [`histogram`] — fixed-bucket integer histograms that merge cheaply.
//! * [`linreg`] — least-squares fits (incl. log–log scaling exponents).
//! * [`table`] — Markdown / CSV table emitters used by the bench harnesses.
//! * [`envcfg`] — tiny environment-variable configuration for bench targets
//!   (`PABA_RUNS`, `PABA_SEED`, `PABA_SCALE`, …).
//! * [`json`] — the two shared JSON emission helpers (`escape`, `num`)
//!   behind every hand-rolled artifact writer.
//! * [`schema`] — the artifact schema identifiers every writer/reader
//!   pair shares.
//! * [`provenance`] — the per-artifact provenance block (seed, config
//!   hash, build profile, wall clock) written by one shared helper.

pub mod envcfg;
pub mod hash;
pub mod histogram;
pub mod json;
pub mod linreg;
pub mod provenance;
pub mod rng;
pub mod schema;
pub mod stats;
pub mod table;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use histogram::Histogram;
pub use linreg::{fit_line, fit_loglog, LineFit};
pub use provenance::Provenance;
pub use rng::{mix64, mix_seed, split_seed, SplitMix64};
pub use stats::{OnlineStats, Summary};
pub use table::{Align, Table};
