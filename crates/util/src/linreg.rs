//! Least-squares line fitting, including log–log scaling-exponent fits.
//!
//! Several experiments compare a *measured* growth exponent against the
//! paper's asymptotic claim — e.g. Theorem 3 predicts the communication
//! cost of the nearest-replica strategy scales as `K^{(1-γ)∨0 + 1/2 - ...}`
//! depending on the Zipf parameter. [`fit_loglog`] fits `y = a·x^b` by
//! ordinary least squares on `(ln x, ln y)` and reports the exponent `b`
//! with its standard error and the fit's R².

/// Result of a least-squares line fit `y = intercept + slope·x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Standard error of the slope estimate.
    pub slope_std_err: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

/// Ordinary least-squares fit of `y = intercept + slope·x`.
///
/// Returns `None` when fewer than two distinct x-values are supplied or any
/// coordinate is non-finite.
pub fn fit_line(points: &[(f64, f64)]) -> Option<LineFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    if points
        .iter()
        .any(|&(x, y)| !x.is_finite() || !y.is_finite())
    {
        return None;
    }
    let nf = n as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None; // vertical line: slope undefined
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    // Residual sum of squares and diagnostics.
    let ss_res: f64 = points
        .iter()
        .map(|&(x, y)| {
            let e = y - (intercept + slope * x);
            e * e
        })
        .sum();
    let r_squared = if syy == 0.0 {
        1.0 // all y equal: a horizontal line fits exactly
    } else {
        1.0 - ss_res / syy
    };
    let slope_std_err = if n > 2 {
        (ss_res / (nf - 2.0) / sxx).sqrt()
    } else {
        0.0
    };
    Some(LineFit {
        slope,
        intercept,
        slope_std_err,
        r_squared,
        n,
    })
}

/// Fit `y = a·x^b` by least squares on `(ln x, ln y)`.
///
/// The returned [`LineFit`]'s `slope` is the exponent `b`, and `intercept`
/// is `ln a`. Points with non-positive coordinates are skipped (they have
/// no logarithm); `None` if fewer than two usable points remain.
///
/// ```
/// let pts: Vec<(f64, f64)> = (1..=20).map(|i| {
///     let x = i as f64;
///     (x, 3.0 * x.powf(0.5))
/// }).collect();
/// let fit = paba_util::fit_loglog(&pts).unwrap();
/// assert!((fit.slope - 0.5).abs() < 1e-9);
/// ```
pub fn fit_loglog(points: &[(f64, f64)]) -> Option<LineFit> {
    let logged: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    fit_line(&logged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.5 * i as f64 - 1.0)).collect();
        let fit = fit_line(&pts).unwrap();
        assert!((fit.slope - 2.5).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.slope_std_err < 1e-9);
    }

    #[test]
    fn too_few_points() {
        assert!(fit_line(&[]).is_none());
        assert!(fit_line(&[(1.0, 2.0)]).is_none());
    }

    #[test]
    fn vertical_line_rejected() {
        assert!(fit_line(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn non_finite_rejected() {
        assert!(fit_line(&[(1.0, f64::NAN), (2.0, 3.0)]).is_none());
        assert!(fit_line(&[(f64::INFINITY, 1.0), (2.0, 3.0)]).is_none());
    }

    #[test]
    fn horizontal_line_r2_is_one() {
        let fit = fit_line(&[(1.0, 4.0), (2.0, 4.0), (3.0, 4.0)]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn noisy_slope_recovered_within_error() {
        // y = 3x + deterministic "noise" of bounded amplitude.
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                (x, 3.0 * x + ((i * 7919) % 13) as f64 / 13.0 - 0.5)
            })
            .collect();
        let fit = fit_line(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 0.01, "slope {}", fit.slope);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn loglog_power_law() {
        let pts: Vec<(f64, f64)> = (1..=50)
            .map(|i| {
                let x = i as f64 * 10.0;
                (x, 0.7 * x.powf(1.5))
            })
            .collect();
        let fit = fit_loglog(&pts).unwrap();
        assert!((fit.slope - 1.5).abs() < 1e-9);
        assert!((fit.intercept.exp() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn loglog_skips_nonpositive_points() {
        let pts = [
            (0.0, 1.0),
            (-1.0, 2.0),
            (1.0, 0.0),
            (2.0, 4.0),
            (4.0, 16.0),
            (8.0, 64.0),
        ];
        let fit = fit_loglog(&pts).unwrap();
        assert_eq!(fit.n, 3);
        assert!((fit.slope - 2.0).abs() < 1e-9);
    }
}
