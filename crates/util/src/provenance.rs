//! Run provenance stamped into every emitted artifact.
//!
//! Cross-run comparisons (`paba report`, `profile --diff`, the repro
//! gate) are only sound when each measurement records *how* it was
//! produced. [`Provenance`] is that record: the artifact's schema id,
//! the writer version, the master seed, the scale label, a hash of the
//! full configuration string, the thread budget, the build profile, and
//! the wall-clock write time. One shared [`Provenance::capture`] +
//! [`Provenance::to_json`] pair feeds every hand-rolled writer, so the
//! block cannot drift between artifacts.
//!
//! The matching reader lives next to the JSON parser
//! (`paba_bench::report`); all pre-existing readers tolerate the extra
//! top-level `"provenance"` key.

use std::hash::Hasher;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::hash::FxHasher;
use crate::json::escape;

/// Provenance block written under the top-level `"provenance"` key of
/// every artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// Schema id of the artifact this block is embedded in (one of
    /// [`crate::schema::ALL`]).
    pub schema: String,
    /// Writing binary and version, e.g. `paba/0.1.0`.
    pub writer: String,
    /// Master seed every run derived from.
    pub seed: u64,
    /// Scale label (`quick` / `default` / `full`, or a free-form label).
    pub scale: String,
    /// FxHash of the canonical configuration string, as 16 hex digits.
    pub config_hash: String,
    /// Worker threads available to the producing run.
    pub threads: u64,
    /// `release` or `debug` (from `cfg!(debug_assertions)`).
    pub build_profile: String,
    /// Seconds since the Unix epoch at write time.
    pub unix_time_s: u64,
}

impl Provenance {
    /// Capture provenance for an artifact being written now.
    ///
    /// `config` is any canonical string describing the run parameters;
    /// only its hash is stored, so it can be verbose.
    pub fn capture(schema: &str, seed: u64, scale: &str, config: &str) -> Self {
        Self {
            schema: schema.to_string(),
            writer: concat!("paba/", env!("CARGO_PKG_VERSION")).to_string(),
            seed,
            scale: scale.to_string(),
            config_hash: config_hash(config),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
            build_profile: if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }
            .to_string(),
            unix_time_s: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
        }
    }

    /// Single-line JSON object, embedded verbatim by every writer.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\": \"{}\", \"writer\": \"{}\", \"seed\": {}, \"scale\": \"{}\", \"config_hash\": \"{}\", \"threads\": {}, \"build_profile\": \"{}\", \"unix_time_s\": {}}}",
            escape(&self.schema),
            escape(&self.writer),
            self.seed,
            escape(&self.scale),
            escape(&self.config_hash),
            self.threads,
            escape(&self.build_profile),
            self.unix_time_s,
        )
    }
}

/// FxHash of a canonical configuration string, as 16 hex digits.
pub fn config_hash(config: &str) -> String {
    let mut h = FxHasher::default();
    h.write(config.as_bytes());
    format!("{:016x}", h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_fills_every_field() {
        let p = Provenance::capture(crate::schema::PROFILE, 42, "quick", "radius=2 gamma=0.8");
        assert_eq!(p.schema, "paba-profile/1");
        assert!(p.writer.starts_with("paba/"));
        assert_eq!(p.seed, 42);
        assert_eq!(p.scale, "quick");
        assert_eq!(p.config_hash.len(), 16);
        assert!(p.config_hash.chars().all(|c| c.is_ascii_hexdigit()));
        assert!(p.threads >= 1);
        assert!(p.build_profile == "debug" || p.build_profile == "release");
        assert!(p.unix_time_s > 1_600_000_000, "wall clock is sane");
    }

    #[test]
    fn config_hash_is_deterministic_and_sensitive() {
        assert_eq!(config_hash("a b c"), config_hash("a b c"));
        assert_ne!(config_hash("a b c"), config_hash("a b d"));
    }

    #[test]
    fn json_is_single_line_with_all_keys() {
        let p = Provenance::capture(crate::schema::REPRO, 7, "full", "cfg");
        let j = p.to_json();
        assert!(!j.contains('\n'));
        for key in [
            "schema",
            "writer",
            "seed",
            "scale",
            "config_hash",
            "threads",
            "build_profile",
            "unix_time_s",
        ] {
            assert!(j.contains(&format!("\"{key}\": ")), "missing {key}: {j}");
        }
    }
}
