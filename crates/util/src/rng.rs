//! Deterministic seed derivation for parallel Monte-Carlo experiments.
//!
//! Every simulation run in the workspace is keyed by `(master_seed,
//! run_index)`. [`split_seed`] maps that pair to an independent 64-bit seed
//! via SplitMix64, so the result of run `i` never depends on which thread
//! executed it or in what order — a hard requirement for reproducible
//! experiments (see DESIGN.md §2 "Determinism").
//!
//! SplitMix64 is the output-mixing function of Steele, Lea & Flood
//! ("Fast splittable pseudorandom number generators", OOPSLA 2014); it is a
//! bijection on `u64` with excellent avalanche behaviour, which makes it a
//! good *seeder* even though the workspace uses `rand::rngs::SmallRng` for
//! the bulk random streams.

/// A minimal SplitMix64 generator.
///
/// Used for deriving seeds and in tests; simulation hot loops should prefer
/// `SmallRng` seeded from [`split_seed`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator with the given seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Advance the state and return the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// Next output reduced to `[0, bound)`; `bound` must be nonzero.
    ///
    /// Uses the widening-multiply reduction (Lemire); the modulo bias is at
    /// most `bound / 2^64`, negligible for every use in this workspace.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Next output as a double in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The SplitMix64 finalizer: a bijective avalanche mix on `u64`.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mix two words into one seed (order-sensitive).
#[inline]
pub fn mix_seed(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b.wrapping_add(0x9e37_79b9_7f4a_7c15)))
}

/// Derive the seed for run `run_index` of an experiment keyed by
/// `master_seed`.
///
/// The mapping is injective in practice (a composition of bijections with a
/// distinct additive offset per index) and scheduling-independent by
/// construction.
///
/// ```
/// let a = paba_util::split_seed(42, 0);
/// let b = paba_util::split_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, paba_util::split_seed(42, 0));
/// ```
#[inline]
pub fn split_seed(master_seed: u64, run_index: u64) -> u64 {
    let mut g = SplitMix64::new(mix_seed(master_seed, run_index));
    g.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // implementation by Sebastiano Vigna.
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
        assert_eq!(g.next_u64(), 9817491932198370423);
    }

    #[test]
    fn mix64_is_bijective_on_small_sample() {
        let mut outs: Vec<u64> = (0u64..10_000).map(mix64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn split_seed_distinct_runs() {
        let seeds: Vec<u64> = (0..1000).map(|i| split_seed(99, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len());
    }

    #[test]
    fn split_seed_distinct_masters() {
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
        assert_ne!(split_seed(1, 7), split_seed(2, 7));
    }

    #[test]
    fn next_below_in_range_and_roughly_uniform() {
        let mut g = SplitMix64::new(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = g.next_below(10);
            assert!(v < 10);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per cell; allow generous ±6% (~6 sigma).
            assert!((9_400..=10_600).contains(&c), "counts: {counts:?}");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = SplitMix64::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
