//! The artifact schema identifiers, centralized.
//!
//! Every JSON artifact the workspace emits carries a top-level
//! `"schema"` field naming its format and version. These used to be
//! string literals scattered across five hand-rolled writers (and their
//! readers); they live here now so a writer and its reader can never
//! drift apart silently. Bump the `/N` suffix when a format changes
//! incompatibly; additive keys do not need a bump (all readers tolerate
//! unknown keys).

/// `paba throughput` grid measurements (`BENCH_throughput.json`).
pub const THROUGHPUT: &str = "paba-throughput/1";

/// `paba profile` sampler-path / span breakdown (`BENCH_profile.json`).
pub const PROFILE: &str = "paba-profile/1";

/// `paba repro` theorem-gate artifact (`BENCH_repro.json`).
pub const REPRO: &str = "paba-repro/1";

/// `paba trace` per-run load-evolution series.
pub const TRACE_SERIES: &str = "paba-trace-series/1";

/// `paba simulate --telemetry` snapshot dump.
pub const TELEMETRY: &str = "paba-telemetry/1";

/// `paba churn` fault-injection gate artifact (`BENCH_churn.json`).
pub const CHURN: &str = "paba-churn/1";

/// `paba queueing` temporal serving-engine gate artifact
/// (`BENCH_queueing.json`).
pub const QUEUEING: &str = "paba-queueing/1";

/// Every known schema id, for readers that dispatch on the field.
pub const ALL: [&str; 7] = [
    THROUGHPUT,
    PROFILE,
    REPRO,
    TRACE_SERIES,
    TELEMETRY,
    CHURN,
    QUEUEING,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_versioned() {
        let mut seen = std::collections::HashSet::new();
        for id in ALL {
            assert!(seen.insert(id), "duplicate schema id {id}");
            let (name, version) = id.split_once('/').expect("schema id has /version");
            assert!(name.starts_with("paba-"), "{id}");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c == '-' || c.is_ascii_digit()),
                "{id}"
            );
            assert!(version.parse::<u32>().is_ok(), "{id}");
        }
    }
}
