//! Online (single-pass) statistics with numerically stable accumulation.
//!
//! The experiment harnesses average a metric over many Monte-Carlo runs and
//! report mean ± std. [`OnlineStats`] implements Welford's algorithm, which
//! is stable for long streams, and supports O(1) *merging* of partial
//! aggregates produced by worker threads (Chan et al.'s parallel variant),
//! which is what the `paba-mcrunner` executor relies on.

/// Welford online accumulator for mean/variance/min/max.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into `self` (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Minimum observation (`+inf` when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the ~95% normal-approximation confidence interval.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_err()
    }

    /// Freeze into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            std_err: self.std_err(),
            min: if self.count == 0 { f64::NAN } else { self.min },
            max: if self.count == 0 { f64::NAN } else { self.max },
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Immutable snapshot of an [`OnlineStats`] accumulator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_err: f64,
    /// Minimum observation (NaN when empty).
    pub min: f64,
    /// Maximum observation (NaN when empty).
    pub max: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={}, min={:.4}, max={:.4})",
            self.mean,
            1.96 * self.std_err,
            self.count,
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.5).collect();
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!(close(s.mean(), mean, 1e-12));
        assert!(close(s.variance(), var, 1e-12));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let ys: Vec<f64> = (0..300).map(|i| (i as f64).cos() * 3.0 + 1.0).collect();
        let all: OnlineStats = xs.iter().chain(ys.iter()).copied().collect();
        let mut a: OnlineStats = xs.iter().copied().collect();
        let b: OnlineStats = ys.iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!(close(a.mean(), all.mean(), 1e-12));
        assert!(close(a.variance(), all.variance(), 1e-10));
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn summary_display_formats() {
        let s: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let text = s.summary().to_string();
        assert!(text.contains("2.0000"), "{text}");
        assert!(text.contains("n=3"), "{text}");
    }

    #[test]
    fn numerically_stable_for_large_offset() {
        // Classic catastrophic-cancellation scenario for naive sum-of-squares.
        let offset = 1e9;
        let s: OnlineStats = (0..1000).map(|i| offset + (i % 2) as f64).collect();
        assert!(close(s.variance(), 0.25025, 1e-3), "var={}", s.variance());
    }
}
