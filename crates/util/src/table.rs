//! Plain-text table emitters (Markdown and CSV).
//!
//! Every bench target prints the same rows/series the paper's figure or
//! table reports. A tiny hand-rolled builder keeps the output dependency-
//! free and lets us emit both a human-readable Markdown table (for
//! `bench_output.txt`) and machine-readable CSV (for replotting).

use std::fmt::Write as _;

/// Column alignment for Markdown rendering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (`:---`).
    Left,
    /// Right-aligned (`---:`), the default for numeric columns.
    Right,
    /// Centered (`:--:`).
    Center,
}

/// An in-memory table of strings with typed helpers for numeric cells.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers (right-aligned).
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Right; headers.len()];
        Self {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Override column alignments (length must match the header count).
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment arity mismatch");
        self.aligns = aligns;
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row of preformatted cells. Panics on arity mismatch.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        // The separator needs at least 3 dashes plus alignment colons.
        for w in widths.iter_mut() {
            *w = (*w).max(4);
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String], aligns: &[Align]| {
            out.push('|');
            for ((cell, &w), &a) in cells.iter().zip(widths.iter()).zip(aligns.iter()) {
                match a {
                    Align::Left => {
                        let _ = write!(out, " {cell:<w$} |");
                    }
                    Align::Right => {
                        let _ = write!(out, " {cell:>w$} |");
                    }
                    Align::Center => {
                        let _ = write!(out, " {cell:^w$} |");
                    }
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers, &self.aligns);
        out.push('|');
        for (&w, &a) in widths.iter().zip(self.aligns.iter()) {
            let bar = match a {
                Align::Left => format!(":{}", "-".repeat(w)),
                Align::Right => format!("{}:", "-".repeat(w)),
                Align::Center => format!(":{}:", "-".repeat(w - 1)),
            };
            let _ = write!(out, " {bar} |");
        }
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row, &self.aligns);
        }
        out
    }

    /// Render as RFC-4180-ish CSV (quotes cells containing `,`, `"`, `\n`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let write_row = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

/// Format a float with `digits` significant decimal places, trimming to a
/// compact form (keeps bench output readable).
pub fn fmt_f64(x: f64, digits: usize) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["n", "max load", "note"]).with_aligns(vec![
            Align::Right,
            Align::Right,
            Align::Left,
        ]);
        t.push_row(["100", "4.31", "ok"]);
        t.push_row(["2025", "6.02", "has, comma"]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("max load"));
        assert!(lines[1].contains("---:"), "{}", lines[1]);
        assert!(lines[1].contains(":---"), "{}", lines[1]);
        assert!(lines[3].contains("6.02"));
        // All rows have the same rendered width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    fn csv_escaping() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "n,max load,note");
        assert_eq!(lines[2], "2025,6.02,\"has, comma\"");
    }

    #[test]
    fn csv_quote_doubling() {
        let mut t = Table::new(["a"]);
        t.push_row(["say \"hi\""]);
        assert!(t.to_csv().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.to_markdown().lines().count(), 2);
        assert_eq!(t.to_csv().lines().count(), 1);
    }

    #[test]
    fn fmt_f64_behaviour() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(f64::NAN, 2), "NaN");
        assert_eq!(fmt_f64(2.0, 0), "2");
    }
}
