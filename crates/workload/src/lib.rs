//! # paba-workload — pluggable workload generation & trace replay
//!
//! The paper's delivery phase fixes one workload: uniform origins, IID
//! popularity draws, one request per ball. Production cache networks see
//! richer streams — flash crowds, skewed client geography, popularity
//! drift — and related systems (DistCache's adversarially-skewed and
//! time-varying keys; Panigrahy et al.'s heterogeneous request rates) are
//! evaluated exactly there. This crate turns the hard-coded request loop
//! into a pluggable architecture on top of
//! [`paba_core::RequestSource`]:
//!
//! * **Sources** — [`HotspotOrigins`] and [`ZipfOrigins`] (clustered /
//!   rank-skewed client geography), [`FlashCrowd`] (a file's popularity
//!   spikes for a window then decays), [`ShiftingPopularity`] (the
//!   rank→file mapping rotates every epoch), plus the re-exported
//!   [`IidUniform`] paper baseline — all driving
//!   [`paba_core::simulate_source`] unchanged.
//! * **Traces** — any stream can be recorded ([`TraceRecorder`],
//!   [`TraceWriter`]) into a binary or CSV file and replayed
//!   deterministically ([`TraceReplay`]), making a workload a portable
//!   artifact every strategy can be compared against.
//! * **Specs** — [`WorkloadSpec`] is the plain-data form the CLI, sweep
//!   drivers, and benches use to pick a workload at runtime;
//!   [`WorkloadSource`] is the matching monomorphic dispatch enum.
//!
//! ```
//! use paba_core::prelude::*;
//! use paba_core::simulate_source;
//! use paba_workload::{FlashCrowd, TraceRecorder, TraceReplay};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let net = CacheNetwork::builder()
//!     .torus_side(10)
//!     .library(50, Popularity::zipf(0.8))
//!     .cache_size(4)
//!     .build(&mut rng);
//!
//! // Flash crowd on file 3, recorded while it drives Strategy II…
//! let mut source = TraceRecorder::new(FlashCrowd::new(3, 20, 60, 50.0, 10.0));
//! let mut strat = ProximityChoice::two_choice(Some(4));
//! let rep = simulate_source(&net, &mut strat, &mut source, 100, &mut rng);
//! assert_eq!(rep.total_requests, 100);
//!
//! // …then replayed bit-identically against Strategy I.
//! let mut replay = TraceReplay::new(source.into_trace(&net));
//! let mut nearest = NearestReplica::new();
//! let rep2 = simulate_source(&net, &mut nearest, &mut replay, 100, &mut rng);
//! assert_eq!(rep2.total_requests, 100);
//! ```

pub mod sources;
pub mod spec;
pub mod trace;

pub use sources::{FlashCrowd, HotspotOrigins, ShiftingPopularity, ZipfOrigins};
pub use spec::{WorkloadSource, WorkloadSpec};
pub use trace::{Trace, TraceRecorder, TraceReplay, TraceWriter};

// Re-export the trait and baseline so downstream users need one import.
pub use paba_core::{IidUniform, RequestSource};
