//! Synthetic request sources beyond the paper's IID baseline.
//!
//! Each source keeps the paper's "one ball per request" framing but bends
//! one axis of the workload:
//!
//! * [`HotspotOrigins`] — *where* requests come from: client geography
//!   concentrated around hotspot centers on the torus (or Zipf-skewed
//!   across node indices), instead of uniform origins.
//! * [`FlashCrowd`] — *when* a file is popular: one file's popularity is
//!   boosted by a factor during a request-window, then decays
//!   exponentially back to the base profile.
//! * [`ShiftingPopularity`] — *which* files are popular: the profile's
//!   rank→file assignment rotates every epoch, modelling daily topic
//!   churn under a stable popularity *shape*.

use paba_core::{apply_uncached_policy, CacheNetwork, Request, RequestSource, UncachedPolicy};
use paba_popularity::{AliasTable, FileId};
use paba_topology::{NodeId, Topology};
use paba_util::SplitMix64;
use rand::Rng;

/// Requests whose origins cluster around hotspot centers.
///
/// With probability `fraction` the origin is drawn uniformly from the
/// radius-`radius` ball of a uniformly chosen center; otherwise it is
/// uniform over all `n` servers (the baseline). Files follow the library
/// profile under the configured [`UncachedPolicy`].
#[derive(Clone, Debug)]
pub struct HotspotOrigins {
    centers: Vec<NodeId>,
    radius: u32,
    fraction: f64,
    policy: UncachedPolicy,
}

impl HotspotOrigins {
    /// Source with explicit hotspot `centers`.
    ///
    /// # Panics
    /// If `centers` is empty or `fraction` is outside `[0, 1]`.
    pub fn new(centers: Vec<NodeId>, radius: u32, fraction: f64) -> Self {
        assert!(!centers.is_empty(), "need at least one hotspot center");
        assert!(
            (0.0..=1.0).contains(&fraction),
            "hotspot fraction must be in [0,1], got {fraction}"
        );
        Self {
            centers,
            radius,
            fraction,
            policy: UncachedPolicy::default(),
        }
    }

    /// `count` distinct centers drawn deterministically from `seed` over
    /// `0..n`.
    ///
    /// # Panics
    /// If `count == 0` or `count > n`.
    pub fn seeded(count: u32, radius: u32, fraction: f64, n: u32, seed: u64) -> Self {
        assert!(count > 0 && count <= n, "need 1..=n centers, got {count}");
        let mut g = SplitMix64::new(seed);
        let mut centers = Vec::with_capacity(count as usize);
        while (centers.len() as u32) < count {
            let c = g.next_below(n as u64) as NodeId;
            if !centers.contains(&c) {
                centers.push(c);
            }
        }
        Self::new(centers, radius, fraction)
    }

    /// Override the uncached-file policy (default: resample).
    pub fn with_policy(mut self, policy: UncachedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The hotspot centers.
    pub fn centers(&self) -> &[NodeId] {
        &self.centers
    }
}

impl<T: Topology> RequestSource<T> for HotspotOrigins {
    fn next_request<R: Rng + ?Sized>(&mut self, net: &CacheNetwork<T>, rng: &mut R) -> Request {
        let origin = if rng.gen::<f64>() < self.fraction {
            let c = self.centers[rng.gen_range(0..self.centers.len())];
            net.topo().sample_in_ball(c, self.radius, rng)
        } else {
            rng.gen_range(0..net.n())
        };
        let file = net.library().sample_file(rng);
        let file = apply_uncached_policy(net, file, self.policy, rng);
        Request { origin, file }
    }

    fn name(&self) -> &'static str {
        "hotspot-origins"
    }
}

/// Zipf-skewed client geography: origin node `u` is drawn with
/// probability proportional to `(u+1)^{-gamma}` (node indices as
/// popularity ranks). `gamma = 0` recovers uniform origins.
#[derive(Clone, Debug)]
pub struct ZipfOrigins {
    gamma: f64,
    policy: UncachedPolicy,
    table: Option<(u32, AliasTable)>,
}

impl ZipfOrigins {
    /// Origins `∝ (u+1)^{-gamma}`.
    ///
    /// # Panics
    /// If `gamma` is negative or non-finite.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma.is_finite() && gamma >= 0.0, "gamma must be ≥ 0");
        Self {
            gamma,
            policy: UncachedPolicy::default(),
            table: None,
        }
    }

    /// Override the uncached-file policy (default: resample).
    pub fn with_policy(mut self, policy: UncachedPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl<T: Topology> RequestSource<T> for ZipfOrigins {
    fn next_request<R: Rng + ?Sized>(&mut self, net: &CacheNetwork<T>, rng: &mut R) -> Request {
        let origin = if self.gamma == 0.0 {
            rng.gen_range(0..net.n())
        } else {
            let n = net.n();
            if self.table.as_ref().map(|(tn, _)| *tn) != Some(n) {
                let w: Vec<f64> = (1..=n as u64)
                    .map(|i| (i as f64).powf(-self.gamma))
                    .collect();
                self.table = Some((n, AliasTable::new(&w)));
            }
            self.table.as_ref().expect("built above").1.sample(rng)
        };
        let file = net.library().sample_file(rng);
        let file = apply_uncached_policy(net, file, self.policy, rng);
        Request { origin, file }
    }

    fn name(&self) -> &'static str {
        "zipf-origins"
    }
}

/// One file's popularity spikes for a request-window, then decays.
///
/// Requests `start .. start+duration` boost `hot_file`'s weight by
/// `boost`; afterwards the boost decays as `1 + (boost−1)·e^{−Δt/tau}`
/// (immediately back to baseline when `tau == 0`). At boost `b` and base
/// weight `w`, the hot file's effective popularity is the exactly
/// renormalized `b·w / (1 − w + b·w)`.
///
/// Caveat: the boost applies *before* the [`UncachedPolicy`]. Under the
/// default `ResampleFile`, a hot file with **zero replicas** in the
/// sampled placement has every boosted draw resampled away, degrading
/// the stream to the base profile over cached files. Pick a popular
/// (low-id) `hot_file` or a placement that covers it — unpopular files
/// may be uncached in sparse placements.
#[derive(Clone, Debug)]
pub struct FlashCrowd {
    hot_file: FileId,
    start: u64,
    duration: u64,
    boost: f64,
    tau: f64,
    policy: UncachedPolicy,
    t: u64,
}

impl FlashCrowd {
    /// Flash crowd on `hot_file` over requests `start..start+duration`
    /// with weight multiplier `boost ≥ 1` and post-window decay constant
    /// `tau` (in requests).
    ///
    /// # Panics
    /// If `boost < 1` or `tau < 0`.
    pub fn new(hot_file: FileId, start: u64, duration: u64, boost: f64, tau: f64) -> Self {
        assert!(boost >= 1.0, "boost must be ≥ 1, got {boost}");
        assert!(tau >= 0.0, "tau must be ≥ 0, got {tau}");
        Self {
            hot_file,
            start,
            duration,
            boost,
            tau,
            policy: UncachedPolicy::default(),
            t: 0,
        }
    }

    /// Override the uncached-file policy (default: resample).
    pub fn with_policy(mut self, policy: UncachedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The boosted file.
    pub fn hot_file(&self) -> FileId {
        self.hot_file
    }

    /// Effective weight multiplier at request index `t`.
    pub fn boost_at(&self, t: u64) -> f64 {
        let end = self.start.saturating_add(self.duration);
        if t < self.start {
            1.0
        } else if t < end {
            self.boost
        } else if self.tau == 0.0 {
            1.0
        } else {
            1.0 + (self.boost - 1.0) * (-((t - end) as f64) / self.tau).exp()
        }
    }

    /// Requests emitted so far.
    pub fn elapsed(&self) -> u64 {
        self.t
    }
}

impl<T: Topology> RequestSource<T> for FlashCrowd {
    fn next_request<R: Rng + ?Sized>(&mut self, net: &CacheNetwork<T>, rng: &mut R) -> Request {
        let origin = rng.gen_range(0..net.n());
        let b = self.boost_at(self.t);
        self.t += 1;
        let w = net.library().probability(self.hot_file % net.k());
        // Mixture that renormalizes exactly: force the hot file with
        // probability q, else draw from the base profile. Then
        // P[hot] = q + (1−q)·w = b·w / (1 − w + b·w) and every other file
        // keeps weight w_f / (1 − w + b·w).
        let q = (b - 1.0) * w / (1.0 - w + b * w);
        let file = if b > 1.0 && rng.gen::<f64>() < q {
            self.hot_file % net.k()
        } else {
            net.library().sample_file(rng)
        };
        let file = apply_uncached_policy(net, file, self.policy, rng);
        Request { origin, file }
    }

    fn name(&self) -> &'static str {
        "flash-crowd"
    }
}

/// The popularity profile re-ranks every epoch: the profile *shape* stays
/// fixed, but which concrete file occupies each rank rotates by `step`
/// positions per epoch of `epoch` requests — circular topic churn.
#[derive(Clone, Debug)]
pub struct ShiftingPopularity {
    epoch: u64,
    step: u32,
    policy: UncachedPolicy,
    t: u64,
}

impl ShiftingPopularity {
    /// Rotate the rank→file mapping by `step` every `epoch` requests.
    ///
    /// # Panics
    /// If `epoch == 0`.
    pub fn new(epoch: u64, step: u32) -> Self {
        assert!(epoch > 0, "epoch must be positive");
        Self {
            epoch,
            step,
            policy: UncachedPolicy::default(),
            t: 0,
        }
    }

    /// Override the uncached-file policy (default: resample).
    pub fn with_policy(mut self, policy: UncachedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The file currently occupying popularity rank `rank` (at internal
    /// time `t`).
    pub fn file_at_rank(&self, rank: FileId, k: u32) -> FileId {
        let rotation = (self.t / self.epoch) * self.step as u64;
        ((rank as u64 + rotation) % k as u64) as FileId
    }
}

impl<T: Topology> RequestSource<T> for ShiftingPopularity {
    fn next_request<R: Rng + ?Sized>(&mut self, net: &CacheNetwork<T>, rng: &mut R) -> Request {
        let origin = rng.gen_range(0..net.n());
        let rank = net.library().sample_file(rng);
        let file = self.file_at_rank(rank, net.k());
        self.t += 1;
        let file = apply_uncached_policy(net, file, self.policy, rng);
        Request { origin, file }
    }

    fn name(&self) -> &'static str {
        "shifting-popularity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_core::simulate_source;
    use paba_core::{NearestReplica, Placement};
    use paba_popularity::Popularity;
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn full_net(side: u32, k: u32) -> CacheNetwork<Torus> {
        // Full replication: no uncached handling, pure workload shape.
        let topo = Torus::new(side);
        let library = paba_core::Library::new(k, Popularity::zipf(0.8));
        let placement = Placement::full(side * side, k);
        CacheNetwork::from_parts(topo, library, placement)
    }

    #[test]
    fn hotspot_origins_concentrate_near_centers() {
        let net = full_net(20, 10);
        let mut src = HotspotOrigins::new(vec![0], 2, 0.9);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut near = 0u32;
        let trials = 20_000;
        for _ in 0..trials {
            let r = src.next_request(&net, &mut rng);
            if net.topo().dist(0, r.origin) <= 2 {
                near += 1;
            }
        }
        // ≈ 0.9 + 0.1·|ball|/n ≈ 0.903; uniform would give 13/400 ≈ 0.0325.
        assert!(near as f64 / trials as f64 > 0.85, "near fraction {near}");
    }

    #[test]
    fn hotspot_seeded_centers_distinct_and_deterministic() {
        let a = HotspotOrigins::seeded(5, 3, 0.5, 100, 7);
        let b = HotspotOrigins::seeded(5, 3, 0.5, 100, 7);
        assert_eq!(a.centers(), b.centers());
        let mut sorted = a.centers().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        assert!(sorted.iter().all(|&c| c < 100));
    }

    #[test]
    fn zipf_origins_rank_skew() {
        let net = full_net(10, 4);
        let mut src = ZipfOrigins::new(1.2);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = vec![0u32; net.n() as usize];
        for _ in 0..30_000 {
            counts[src.next_request(&net, &mut rng).origin as usize] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[99]);
    }

    #[test]
    fn flash_crowd_window_boosts_then_decays() {
        let src = FlashCrowd::new(3, 100, 50, 40.0, 10.0);
        assert_eq!(src.boost_at(0), 1.0);
        assert_eq!(src.boost_at(99), 1.0);
        assert_eq!(src.boost_at(100), 40.0);
        assert_eq!(src.boost_at(149), 40.0);
        let after = src.boost_at(160);
        assert!(after > 1.0 && after < 40.0, "decay boost {after}");
        assert!(src.boost_at(1000) < 1.01);
        // tau = 0: hard stop.
        let hard = FlashCrowd::new(3, 100, 50, 40.0, 0.0);
        assert_eq!(hard.boost_at(150), 1.0);
    }

    #[test]
    fn flash_crowd_hot_file_dominates_inside_window() {
        let net = full_net(12, 50);
        let mut src = FlashCrowd::new(7, 0, u64::MAX, 1e6, 0.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut hot = 0u32;
        let trials = 5_000;
        for _ in 0..trials {
            if src.next_request(&net, &mut rng).file == 7 {
                hot += 1;
            }
        }
        assert!(hot as f64 / trials as f64 > 0.99, "hot fraction {hot}");
    }

    #[test]
    fn shifting_popularity_rotates_hottest_rank() {
        let net = full_net(12, 10);
        // Epoch of 1000 requests, step 3: epoch e's hottest file is (0 + 3e) mod 10.
        let mut src = ShiftingPopularity::new(1000, 3);
        let mut rng = SmallRng::seed_from_u64(5);
        for expect_hot in [0u32, 3, 6] {
            let mut counts = vec![0u32; 10];
            for _ in 0..1000 {
                counts[src.next_request(&net, &mut rng).file as usize] += 1;
            }
            let hottest = (0..10).max_by_key(|&f| counts[f]).unwrap() as u32;
            assert_eq!(hottest, expect_hot, "counts {counts:?}");
        }
    }

    #[test]
    fn sources_drive_simulate_source() {
        let net = full_net(8, 16);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut strat = NearestReplica::new();
        let mut src = ShiftingPopularity::new(10, 1);
        let rep = simulate_source(&net, &mut strat, &mut src, 200, &mut rng);
        assert_eq!(rep.total_requests, 200);
        assert!(rep.check_conservation());
    }
}
