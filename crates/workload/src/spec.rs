//! Declarative workload selection: a plain-data [`WorkloadSpec`] that the
//! CLI, sweep drivers, and benches can build per run, and a
//! [`WorkloadSource`] enum dispatching every source behind one type.

use crate::sources::{FlashCrowd, HotspotOrigins, ShiftingPopularity, ZipfOrigins};
use crate::trace::{Trace, TraceReplay};
use paba_core::{CacheNetwork, IidUniform, Request, RequestSource, UncachedPolicy};
use paba_popularity::FileId;
use paba_topology::Topology;
use rand::Rng;
use std::path::PathBuf;
use std::sync::Arc;

/// Plain-data description of a workload, cheap to clone into every
/// Monte-Carlo run (trace files are loaded once at build time via
/// [`WorkloadSpec::load`]).
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// The paper's baseline: uniform origins, IID popularity draws.
    Iid,
    /// Clustered client geography: `hotspots` seeded centers, requests
    /// near a center with probability `fraction`.
    Hotspot {
        /// Number of hotspot centers.
        hotspots: u32,
        /// Ball radius around each center.
        radius: u32,
        /// Probability a request originates near a center.
        fraction: f64,
        /// Seed for center selection (independent of the request RNG).
        seed: u64,
    },
    /// Zipf-skewed origins with exponent `gamma`.
    ZipfOrigins {
        /// Origin skew exponent (`0` = uniform).
        gamma: f64,
    },
    /// One file spikes for a request-window then decays.
    FlashCrowd {
        /// The boosted file.
        file: FileId,
        /// First boosted request index.
        start: u64,
        /// Window length in requests.
        duration: u64,
        /// Weight multiplier during the window (`≥ 1`).
        boost: f64,
        /// Post-window exponential decay constant in requests.
        tau: f64,
    },
    /// Popularity rank→file mapping rotates by `step` every `epoch`
    /// requests.
    Shifting {
        /// Epoch length in requests.
        epoch: u64,
        /// Rotation per epoch.
        step: u32,
    },
    /// Replay a recorded trace (loaded once, shared by reference across
    /// runs).
    Replay {
        /// The preloaded trace (behind an [`Arc`], so per-run builds
        /// share the records instead of copying them).
        trace: Arc<Trace>,
        /// Wrap around at the end instead of panicking.
        cycle: bool,
    },
}

impl WorkloadSpec {
    /// Load a trace file into a replay spec.
    pub fn load(path: impl Into<PathBuf>, cycle: bool) -> Result<Self, String> {
        Ok(WorkloadSpec::Replay {
            trace: Arc::new(Trace::load(path.into())?),
            cycle,
        })
    }

    /// Short machine name (matches the CLI `--workload` values).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Iid => "iid",
            WorkloadSpec::Hotspot { .. } => "hotspot",
            WorkloadSpec::ZipfOrigins { .. } => "zipf-origins",
            WorkloadSpec::FlashCrowd { .. } => "flash-crowd",
            WorkloadSpec::Shifting { .. } => "shifting",
            WorkloadSpec::Replay { .. } => "trace",
        }
    }

    /// Validate parameters against a network shape without building
    /// anything — lets drivers fail fast before spawning parallel runs.
    pub fn validate(&self, n: u32, k: u32) -> Result<(), String> {
        match *self {
            WorkloadSpec::Iid => {}
            WorkloadSpec::Hotspot {
                hotspots, fraction, ..
            } => {
                if hotspots == 0 || hotspots > n {
                    return Err(format!("hotspot count {hotspots} out of range 1..={n}"));
                }
                if !(0.0..=1.0).contains(&fraction) {
                    return Err(format!("hotspot fraction {fraction} not in [0,1]"));
                }
            }
            WorkloadSpec::ZipfOrigins { gamma } => {
                if !gamma.is_finite() || gamma < 0.0 {
                    return Err(format!("origin gamma {gamma} must be ≥ 0"));
                }
            }
            WorkloadSpec::FlashCrowd {
                file, boost, tau, ..
            } => {
                if file >= k {
                    return Err(format!("flash file {file} ≥ K={k}"));
                }
                if boost < 1.0 || !boost.is_finite() {
                    return Err(format!("flash boost {boost} must be ≥ 1"));
                }
                if tau < 0.0 || !tau.is_finite() {
                    return Err(format!("flash tau {tau} must be ≥ 0"));
                }
            }
            WorkloadSpec::Shifting { epoch, .. } => {
                if epoch == 0 {
                    return Err("shifting epoch must be positive".into());
                }
            }
            WorkloadSpec::Replay { ref trace, .. } => {
                if trace.n != n || trace.k != k {
                    return Err(format!(
                        "trace shape (n={}, k={}) does not match network (n={n}, k={k})",
                        trace.n, trace.k
                    ));
                }
            }
        }
        Ok(())
    }

    /// Instantiate a fresh source for one run against `net`, under
    /// `policy` (ignored by trace replay — the trace already fixed its
    /// requests).
    pub fn build<T: Topology>(
        &self,
        net: &CacheNetwork<T>,
        policy: UncachedPolicy,
    ) -> Result<WorkloadSource, String> {
        self.validate(net.n(), net.k())?;
        Ok(match *self {
            WorkloadSpec::Iid => WorkloadSource::Iid(IidUniform::with_policy(policy)),
            WorkloadSpec::Hotspot {
                hotspots,
                radius,
                fraction,
                seed,
            } => WorkloadSource::Hotspot(
                HotspotOrigins::seeded(hotspots, radius, fraction, net.n(), seed)
                    .with_policy(policy),
            ),
            WorkloadSpec::ZipfOrigins { gamma } => {
                WorkloadSource::ZipfOrigins(ZipfOrigins::new(gamma).with_policy(policy))
            }
            WorkloadSpec::FlashCrowd {
                file,
                start,
                duration,
                boost,
                tau,
            } => WorkloadSource::FlashCrowd(
                FlashCrowd::new(file, start, duration, boost, tau).with_policy(policy),
            ),
            WorkloadSpec::Shifting { epoch, step } => {
                WorkloadSource::Shifting(ShiftingPopularity::new(epoch, step).with_policy(policy))
            }
            WorkloadSpec::Replay { ref trace, cycle } => WorkloadSource::Replay(if cycle {
                TraceReplay::cycling(trace.clone())
            } else {
                TraceReplay::new(trace.clone())
            }),
        })
    }
}

/// Every workload source behind one concrete type, so run loops that pick
/// a workload at runtime stay monomorphic.
#[derive(Clone, Debug)]
pub enum WorkloadSource {
    /// Paper baseline.
    Iid(IidUniform),
    /// Clustered origins.
    Hotspot(HotspotOrigins),
    /// Zipf-skewed origins.
    ZipfOrigins(ZipfOrigins),
    /// Popularity spike.
    FlashCrowd(FlashCrowd),
    /// Rotating popularity ranks.
    Shifting(ShiftingPopularity),
    /// Recorded-trace replay.
    Replay(TraceReplay),
}

impl<T: Topology> RequestSource<T> for WorkloadSource {
    fn next_request<R: Rng + ?Sized>(&mut self, net: &CacheNetwork<T>, rng: &mut R) -> Request {
        match self {
            WorkloadSource::Iid(s) => s.next_request(net, rng),
            WorkloadSource::Hotspot(s) => s.next_request(net, rng),
            WorkloadSource::ZipfOrigins(s) => s.next_request(net, rng),
            WorkloadSource::FlashCrowd(s) => s.next_request(net, rng),
            WorkloadSource::Shifting(s) => s.next_request(net, rng),
            WorkloadSource::Replay(s) => s.next_request(net, rng),
        }
    }

    fn size_hint(&self) -> Option<u64> {
        match self {
            WorkloadSource::Iid(s) => RequestSource::<T>::size_hint(s),
            WorkloadSource::Hotspot(s) => RequestSource::<T>::size_hint(s),
            WorkloadSource::ZipfOrigins(s) => RequestSource::<T>::size_hint(s),
            WorkloadSource::FlashCrowd(s) => RequestSource::<T>::size_hint(s),
            WorkloadSource::Shifting(s) => RequestSource::<T>::size_hint(s),
            WorkloadSource::Replay(s) => RequestSource::<T>::size_hint(s),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            WorkloadSource::Iid(s) => RequestSource::<T>::name(s),
            WorkloadSource::Hotspot(s) => RequestSource::<T>::name(s),
            WorkloadSource::ZipfOrigins(s) => RequestSource::<T>::name(s),
            WorkloadSource::FlashCrowd(s) => RequestSource::<T>::name(s),
            WorkloadSource::Shifting(s) => RequestSource::<T>::name(s),
            WorkloadSource::Replay(s) => RequestSource::<T>::name(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_core::{simulate_source, NearestReplica};
    use paba_popularity::Popularity;
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> CacheNetwork<Torus> {
        let mut rng = SmallRng::seed_from_u64(seed);
        CacheNetwork::builder()
            .torus_side(8)
            .library(30, Popularity::zipf(0.7))
            .cache_size(3)
            .build(&mut rng)
    }

    #[test]
    fn every_spec_builds_and_simulates() {
        let net = net(1);
        let specs = [
            WorkloadSpec::Iid,
            WorkloadSpec::Hotspot {
                hotspots: 3,
                radius: 2,
                fraction: 0.8,
                seed: 9,
            },
            WorkloadSpec::ZipfOrigins { gamma: 1.0 },
            WorkloadSpec::FlashCrowd {
                file: 5,
                start: 10,
                duration: 50,
                boost: 30.0,
                tau: 20.0,
            },
            WorkloadSpec::Shifting { epoch: 25, step: 2 },
        ];
        for spec in specs {
            let mut src = spec
                .build(&net, UncachedPolicy::ResampleFile)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            let mut s = NearestReplica::new();
            let mut rng = SmallRng::seed_from_u64(2);
            let rep = simulate_source(&net, &mut s, &mut src, 150, &mut rng);
            assert_eq!(rep.total_requests, 150, "{}", spec.name());
            assert!(rep.check_conservation(), "{}", spec.name());
        }
    }

    #[test]
    fn iid_spec_matches_plain_simulate_bit_for_bit() {
        let net = net(3);
        let mut a = SmallRng::seed_from_u64(77);
        let mut b = a.clone();
        let mut s1 = NearestReplica::new();
        let mut s2 = NearestReplica::new();
        let legacy = paba_core::simulate(&net, &mut s1, 400, &mut a);
        let mut src = WorkloadSpec::Iid
            .build(&net, UncachedPolicy::ResampleFile)
            .unwrap();
        let sourced = simulate_source(&net, &mut s2, &mut src, 400, &mut b);
        assert_eq!(legacy, sourced);
    }

    #[test]
    fn spec_validation_rejects_bad_parameters() {
        let net = net(4);
        let bad = [
            WorkloadSpec::Hotspot {
                hotspots: 0,
                radius: 1,
                fraction: 0.5,
                seed: 1,
            },
            WorkloadSpec::Hotspot {
                hotspots: 2,
                radius: 1,
                fraction: 1.5,
                seed: 1,
            },
            WorkloadSpec::FlashCrowd {
                file: 999,
                start: 0,
                duration: 1,
                boost: 2.0,
                tau: 0.0,
            },
            WorkloadSpec::FlashCrowd {
                file: 0,
                start: 0,
                duration: 1,
                boost: 0.5,
                tau: 0.0,
            },
            WorkloadSpec::Shifting { epoch: 0, step: 1 },
            WorkloadSpec::ZipfOrigins { gamma: -1.0 },
        ];
        for spec in bad {
            assert!(
                spec.build(&net, UncachedPolicy::ResampleFile).is_err(),
                "{spec:?} should fail validation"
            );
        }
    }

    #[test]
    fn replay_spec_checks_shape() {
        let net = net(5);
        let trace = Arc::new(Trace {
            n: net.n(),
            k: net.k(),
            records: vec![Request { origin: 0, file: 0 }; 4],
        });
        assert!(WorkloadSpec::Replay {
            trace: trace.clone(),
            cycle: false
        }
        .build(&net, UncachedPolicy::ResampleFile)
        .is_ok());
        let small = {
            let mut rng = SmallRng::seed_from_u64(1);
            CacheNetwork::builder()
                .torus_side(4)
                .library(30, Popularity::Uniform)
                .cache_size(3)
                .build(&mut rng)
        };
        assert!(WorkloadSpec::Replay {
            trace,
            cycle: false
        }
        .build(&small, UncachedPolicy::ResampleFile)
        .is_err());
    }
}
