//! Request-trace recording and deterministic replay.
//!
//! Any generated request stream can be captured ([`TraceRecorder`] /
//! [`TraceWriter`]) and replayed bit-identically ([`TraceReplay`]), so a
//! workload becomes a portable artifact: generate once, compare every
//! strategy against the *same* request sequence, or ship the file to
//! another machine.
//!
//! Two on-disk formats, chosen by file extension in [`Trace::save`] /
//! [`Trace::load`]:
//!
//! * **binary** (default, any extension but `.csv`): little-endian,
//!   `magic "PABW" · u16 version · u16 reserved · u32 n · u32 k ·
//!   u64 count` followed by `count` records of `u32 origin · u32 file` —
//!   compact and O(1) to size-check;
//! * **CSV** (`.csv`): header `origin,file,n=<n>,k=<k>` (the `n=`/`k=`
//!   parts carry the network shape and are required on load) plus one
//!   `origin,file` record per line — greppable and spreadsheet-friendly.

use paba_core::{CacheNetwork, Request, RequestSource};
use paba_topology::Topology;
use rand::Rng;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Binary trace magic bytes.
pub const TRACE_MAGIC: [u8; 4] = *b"PABW";
/// Current binary trace format version.
pub const TRACE_VERSION: u16 = 1;

/// An in-memory request trace with the network shape it was generated
/// against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Node count of the generating network (origins are `< n`).
    pub n: u32,
    /// Library size of the generating network (files are `< k`).
    pub k: u32,
    /// The recorded requests, in arrival order.
    pub records: Vec<Request>,
}

impl Trace {
    /// Empty trace for a network shape.
    pub fn new(n: u32, k: u32) -> Self {
        Self {
            n,
            k,
            records: Vec::new(),
        }
    }

    /// Validate every record against the declared shape.
    pub fn check(&self) -> Result<(), String> {
        for (i, r) in self.records.iter().enumerate() {
            if r.origin >= self.n {
                return Err(format!("record {i}: origin {} ≥ n={}", r.origin, self.n));
            }
            if r.file >= self.k {
                return Err(format!("record {i}: file {} ≥ k={}", r.file, self.k));
            }
        }
        Ok(())
    }

    /// Save to `path` (CSV when the extension is `.csv`, binary
    /// otherwise).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let path = path.as_ref();
        let mut w = TraceWriter::create(path, self.n, self.k)?;
        for &r in &self.records {
            w.write(r)?;
        }
        w.finish()?;
        Ok(())
    }

    /// Load from `path`, auto-detecting the format from the binary magic.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let mut f = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut magic = [0u8; 4];
        let is_binary = match f.read_exact(&mut magic) {
            Ok(()) => magic == TRACE_MAGIC,
            Err(_) => false,
        };
        drop(f);
        if is_binary {
            Self::load_binary(path)
        } else {
            Self::load_csv(path)
        }
    }

    fn load_binary(path: &Path) -> Result<Self, String> {
        let err = |e: String| format!("{}: {e}", path.display());
        let mut r = BufReader::new(File::open(path).map_err(|e| err(e.to_string()))?);
        let mut head = [0u8; 24];
        r.read_exact(&mut head)
            .map_err(|e| err(format!("short header: {e}")))?;
        if head[0..4] != TRACE_MAGIC {
            return Err(err("bad magic (not a paba trace)".into()));
        }
        let version = u16::from_le_bytes([head[4], head[5]]);
        if version != TRACE_VERSION {
            return Err(err(format!(
                "unsupported trace version {version} (expected {TRACE_VERSION})"
            )));
        }
        let n = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
        let k = u32::from_le_bytes(head[12..16].try_into().expect("4 bytes"));
        let count = u64::from_le_bytes(head[16..24].try_into().expect("8 bytes"));
        let mut records = Vec::with_capacity(count.min(1 << 24) as usize);
        let mut rec = [0u8; 8];
        for i in 0..count {
            r.read_exact(&mut rec)
                .map_err(|e| err(format!("truncated at record {i}/{count}: {e}")))?;
            records.push(Request {
                origin: u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes")),
                file: u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes")),
            });
        }
        let t = Self { n, k, records };
        t.check().map_err(err)?;
        Ok(t)
    }

    fn load_csv(path: &Path) -> Result<Self, String> {
        let err = |e: String| format!("{}: {e}", path.display());
        let r = BufReader::new(File::open(path).map_err(|e| err(e.to_string()))?);
        let mut lines = r.lines();
        let header = lines
            .next()
            .ok_or_else(|| err("empty file".into()))?
            .map_err(|e| err(e.to_string()))?;
        // Header: "origin,file,n=<n>,k=<k>".
        let mut n = None;
        let mut k = None;
        for part in header.split(',') {
            if let Some(v) = part.strip_prefix("n=") {
                n = v.parse::<u32>().ok();
            } else if let Some(v) = part.strip_prefix("k=") {
                k = v.parse::<u32>().ok();
            }
        }
        let (n, k) = match (n, k) {
            (Some(n), Some(k)) => (n, k),
            _ => return Err(err(format!("bad CSV header '{header}'"))),
        };
        let mut records = Vec::new();
        for (i, line) in lines.enumerate() {
            let line = line.map_err(|e| err(e.to_string()))?;
            if line.trim().is_empty() {
                continue;
            }
            let (o, f) = line
                .split_once(',')
                .ok_or_else(|| err(format!("line {}: expected 'origin,file'", i + 2)))?;
            records.push(Request {
                origin: o
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("line {}: bad origin '{o}'", i + 2)))?,
                file: f
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("line {}: bad file '{f}'", i + 2)))?,
            });
        }
        let t = Self { n, k, records };
        t.check().map_err(err)?;
        Ok(t)
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.records.len() as u64
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Streaming trace writer (binary or CSV, chosen by the file extension).
///
/// Records stream straight to disk; [`TraceWriter::finish`] patches the
/// binary header's record count (CSV needs no patching).
pub struct TraceWriter {
    out: BufWriter<File>,
    csv: bool,
    count: u64,
    path: std::path::PathBuf,
}

impl TraceWriter {
    /// Create/truncate `path` for a trace over an `n`-node, `k`-file
    /// network.
    pub fn create(path: impl AsRef<Path>, n: u32, k: u32) -> Result<Self, String> {
        let path = path.as_ref();
        let csv = path
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("csv"));
        let file = File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut out = BufWriter::new(file);
        let io = |e: std::io::Error| format!("{}: {e}", path.display());
        if csv {
            writeln!(out, "origin,file,n={n},k={k}").map_err(io)?;
        } else {
            out.write_all(&TRACE_MAGIC).map_err(io)?;
            out.write_all(&TRACE_VERSION.to_le_bytes()).map_err(io)?;
            out.write_all(&0u16.to_le_bytes()).map_err(io)?;
            out.write_all(&n.to_le_bytes()).map_err(io)?;
            out.write_all(&k.to_le_bytes()).map_err(io)?;
            out.write_all(&0u64.to_le_bytes()).map_err(io)?; // count, patched in finish()
        }
        Ok(Self {
            out,
            csv,
            count: 0,
            path: path.to_path_buf(),
        })
    }

    /// Append one record.
    pub fn write(&mut self, r: Request) -> Result<(), String> {
        let io = |e: std::io::Error| format!("{}: {e}", self.path.display());
        if self.csv {
            writeln!(self.out, "{},{}", r.origin, r.file).map_err(io)?;
        } else {
            self.out.write_all(&r.origin.to_le_bytes()).map_err(io)?;
            self.out.write_all(&r.file.to_le_bytes()).map_err(io)?;
        }
        self.count += 1;
        Ok(())
    }

    /// Flush, patch the binary record count, and return it.
    pub fn finish(mut self) -> Result<u64, String> {
        use std::io::Seek;
        let io = |e: std::io::Error| format!("{}: {e}", self.path.display());
        self.out.flush().map_err(io)?;
        if !self.csv {
            let mut f = self.out.into_inner().map_err(|e| io(e.into_error()))?;
            f.seek(std::io::SeekFrom::Start(16)).map_err(io)?;
            f.write_all(&self.count.to_le_bytes()).map_err(io)?;
            f.flush().map_err(io)?;
        }
        Ok(self.count)
    }
}

/// Wraps any [`RequestSource`] and records every emitted request.
#[derive(Clone, Debug)]
pub struct TraceRecorder<S> {
    inner: S,
    records: Vec<Request>,
}

impl<S> TraceRecorder<S> {
    /// Record everything `inner` emits.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            records: Vec::new(),
        }
    }

    /// The records captured so far.
    pub fn records(&self) -> &[Request] {
        &self.records
    }

    /// Consume the recorder into a [`Trace`] stamped with `net`'s shape.
    pub fn into_trace<T: Topology>(self, net: &CacheNetwork<T>) -> Trace {
        Trace {
            n: net.n(),
            k: net.k(),
            records: self.records,
        }
    }
}

impl<T: Topology, S: RequestSource<T>> RequestSource<T> for TraceRecorder<S> {
    fn next_request<R: Rng + ?Sized>(&mut self, net: &CacheNetwork<T>, rng: &mut R) -> Request {
        let r = self.inner.next_request(net, rng);
        self.records.push(r);
        r
    }

    fn size_hint(&self) -> Option<u64> {
        self.inner.size_hint()
    }

    fn name(&self) -> &'static str {
        "trace-recorder"
    }
}

/// Replays a [`Trace`] as a [`RequestSource`] — deterministic by
/// construction and independent of the RNG.
///
/// The trace is held behind an [`Arc`], so cloning a replay (one fresh
/// cursor per Monte-Carlo run) shares the records instead of copying
/// them.
#[derive(Clone, Debug)]
pub struct TraceReplay {
    trace: Arc<Trace>,
    pos: usize,
    cycle: bool,
}

impl TraceReplay {
    /// Replay `trace` once; drawing past the end panics.
    pub fn new(trace: impl Into<Arc<Trace>>) -> Self {
        Self {
            trace: trace.into(),
            pos: 0,
            cycle: false,
        }
    }

    /// Replay `trace` forever, wrapping around at the end.
    pub fn cycling(trace: impl Into<Arc<Trace>>) -> Self {
        Self {
            trace: trace.into(),
            pos: 0,
            cycle: true,
        }
    }

    /// Load a trace file and replay it once.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        Ok(Self::new(Trace::load(path)?))
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Reset the cursor to the beginning.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }

    /// Error unless the trace's shape matches `net`.
    pub fn check_compat<T: Topology>(&self, net: &CacheNetwork<T>) -> Result<(), String> {
        if self.trace.n != net.n() || self.trace.k != net.k() {
            return Err(format!(
                "trace shape (n={}, k={}) does not match network (n={}, k={})",
                self.trace.n,
                self.trace.k,
                net.n(),
                net.k()
            ));
        }
        Ok(())
    }
}

impl<T: Topology> RequestSource<T> for TraceReplay {
    fn next_request<R: Rng + ?Sized>(&mut self, net: &CacheNetwork<T>, _rng: &mut R) -> Request {
        debug_assert!(self.trace.n == net.n() && self.trace.k == net.k());
        if self.pos >= self.trace.records.len() {
            assert!(
                self.cycle && !self.trace.records.is_empty(),
                "trace exhausted after {} records",
                self.trace.records.len()
            );
            self.pos = 0;
        }
        let r = self.trace.records[self.pos];
        self.pos += 1;
        r
    }

    fn size_hint(&self) -> Option<u64> {
        if self.cycle {
            None
        } else {
            Some((self.trace.records.len() - self.pos) as u64)
        }
    }

    fn name(&self) -> &'static str {
        "trace-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_core::IidUniform;
    use paba_popularity::Popularity;
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> CacheNetwork<Torus> {
        let mut rng = SmallRng::seed_from_u64(seed);
        CacheNetwork::builder()
            .torus_side(6)
            .library(40, Popularity::zipf(0.8))
            .cache_size(2)
            .build(&mut rng)
    }

    fn sample_trace(net: &CacheNetwork<Torus>, count: usize, seed: u64) -> Trace {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rec = TraceRecorder::new(IidUniform::new());
        for _ in 0..count {
            rec.next_request(net, &mut rng);
        }
        rec.into_trace(net)
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let net = net(1);
        let trace = sample_trace(&net, 500, 2);
        let dir = std::env::temp_dir().join("paba_workload_test_bin");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        trace.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        assert_eq!(trace, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_round_trip_is_exact() {
        let net = net(3);
        let trace = sample_trace(&net, 200, 4);
        let dir = std::env::temp_dir().join("paba_workload_test_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        trace.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("origin,file,n=36,k=40"));
        let loaded = Trace::load(&path).unwrap();
        assert_eq!(trace, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_reproduces_the_recorded_stream() {
        let net = net(5);
        let trace = sample_trace(&net, 300, 6);
        let mut replay = TraceReplay::new(trace.clone());
        replay.check_compat(&net).unwrap();
        let mut rng = SmallRng::seed_from_u64(999); // irrelevant to replay
        for (i, &expect) in trace.records.iter().enumerate() {
            assert_eq!(
                RequestSource::<Torus>::size_hint(&replay),
                Some((trace.records.len() - i) as u64)
            );
            assert_eq!(replay.next_request(&net, &mut rng), expect);
        }
        assert_eq!(RequestSource::<Torus>::size_hint(&replay), Some(0));
    }

    #[test]
    #[should_panic(expected = "trace exhausted")]
    fn non_cycling_replay_panics_past_the_end() {
        let net = net(5);
        let trace = sample_trace(&net, 3, 6);
        let mut replay = TraceReplay::new(trace);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..4 {
            replay.next_request(&net, &mut rng);
        }
    }

    #[test]
    fn cycling_replay_wraps() {
        let net = net(5);
        let trace = sample_trace(&net, 3, 6);
        let first = trace.records[0];
        let mut replay = TraceReplay::cycling(trace);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..3 {
            replay.next_request(&net, &mut rng);
        }
        assert_eq!(replay.next_request(&net, &mut rng), first);
        assert_eq!(RequestSource::<Torus>::size_hint(&replay), None);
    }

    #[test]
    fn shape_mismatch_detected() {
        let net = net(5);
        let other = {
            let mut rng = SmallRng::seed_from_u64(9);
            CacheNetwork::builder()
                .torus_side(4)
                .library(40, Popularity::Uniform)
                .cache_size(2)
                .build(&mut rng)
        };
        let trace = sample_trace(&net, 10, 6);
        let replay = TraceReplay::new(trace);
        assert!(replay.check_compat(&net).is_ok());
        assert!(replay.check_compat(&other).is_err());
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("paba_workload_test_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.trace");
        std::fs::write(&path, b"PABWxxxx-too-short").unwrap();
        assert!(Trace::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
