//! Distributional correctness of the synthetic request sources, mirroring
//! the sampler χ² suite in `paba-core`:
//!
//! * **χ² goodness-of-fit** — [`ZipfOrigins`] and [`HotspotOrigins`] must
//!   realize their *stated* origin distributions, not merely "look
//!   skewed". Tolerances come from the χ² normal approximation
//!   (`df + 3·√(2·df)`, false-positive rate ≈ 0.1%).
//! * **Phase-boundary determinism** — [`FlashCrowd`] and
//!   [`ShiftingPopularity`] are *time-inhomogeneous*; their phase
//!   switches must happen at exactly the configured request index and the
//!   stream before a boundary must be bit-identical to a source whose
//!   boundary lies in the far future.

use paba_core::{CacheNetwork, Placement, RequestSource};
use paba_popularity::empirical::{chi_squared_critical, FrequencyCounter};
use paba_popularity::Popularity;
use paba_topology::Torus;
use paba_workload::{FlashCrowd, HotspotOrigins, ShiftingPopularity, ZipfOrigins};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Fully replicated network: the uncached policy never interferes, so the
/// observed stream is the source's pure distribution.
fn full_net(side: u32, k: u32, pop: Popularity) -> CacheNetwork<Torus> {
    let topo = Torus::new(side);
    let library = paba_core::Library::new(k, pop);
    let placement = Placement::full(side * side, k);
    CacheNetwork::from_parts(topo, library, placement)
}

#[test]
fn zipf_origins_match_zipf_law_chi_squared() {
    let side = 10u32;
    let n = side * side;
    let gamma = 1.0f64;
    let net = full_net(side, 8, Popularity::Uniform);
    let mut src = ZipfOrigins::new(gamma);
    let mut rng = SmallRng::seed_from_u64(20170529);
    let mut counts = FrequencyCounter::new(n);
    let trials = 200_000u32;
    for _ in 0..trials {
        counts.record(src.next_request(&net, &mut rng).origin);
    }
    let h: f64 = (1..=n as u64).map(|i| (i as f64).powf(-gamma)).sum();
    let expected: Vec<f64> = (1..=n as u64)
        .map(|i| (i as f64).powf(-gamma) / h)
        .collect();
    let stat = counts.chi_squared(&expected);
    let crit = chi_squared_critical(n as usize - 1);
    assert!(stat < crit, "χ²={stat:.1} ≥ critical {crit:.1}");
}

#[test]
fn zipf_origins_gamma_zero_is_uniform_chi_squared() {
    let side = 8u32;
    let n = side * side;
    let net = full_net(side, 4, Popularity::Uniform);
    let mut src = ZipfOrigins::new(0.0);
    let mut rng = SmallRng::seed_from_u64(2);
    let mut counts = FrequencyCounter::new(n);
    for _ in 0..100_000 {
        counts.record(src.next_request(&net, &mut rng).origin);
    }
    let stat = counts.chi_squared(&vec![1.0 / n as f64; n as usize]);
    let crit = chi_squared_critical(n as usize - 1);
    assert!(stat < crit, "χ²={stat:.1} ≥ critical {crit:.1}");
}

#[test]
fn hotspot_origins_uniform_over_ball_chi_squared() {
    // fraction = 1: every origin is uniform over the radius-2 ball of the
    // single center. Cells outside the ball have zero expectation, so a
    // single stray origin makes the statistic infinite — the test also
    // pins the support.
    let side = 20u32;
    let n = side * side;
    let (center, radius) = (57u32, 2u32);
    let net = full_net(side, 8, Popularity::Uniform);
    let topo = Torus::new(side);
    let ball = topo.ball_size(radius);
    let mut expected = vec![0.0f64; n as usize];
    topo.for_each_in_ball(center, radius, |v| {
        expected[v as usize] = 1.0 / ball as f64;
    });
    let mut src = HotspotOrigins::new(vec![center], radius, 1.0);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut counts = FrequencyCounter::new(n);
    for _ in 0..50_000 {
        counts.record(src.next_request(&net, &mut rng).origin);
    }
    let stat = counts.chi_squared(&expected);
    let crit = chi_squared_critical(ball as usize - 1);
    assert!(stat < crit, "χ²={stat:.1} ≥ critical {crit:.1}");
}

#[test]
fn hotspot_origins_mixture_matches_fraction_chi_squared() {
    // fraction = 0.6 mixes ball-uniform with global-uniform; the exact
    // per-node law is 0.6/|B| + 0.4/n inside the ball, 0.4/n outside.
    let side = 12u32;
    let n = side * side;
    let (center, radius, fraction) = (0u32, 3u32, 0.6f64);
    let net = full_net(side, 8, Popularity::Uniform);
    let topo = Torus::new(side);
    let ball = topo.ball_size(radius) as f64;
    let mut expected = vec![(1.0 - fraction) / n as f64; n as usize];
    topo.for_each_in_ball(center, radius, |v| {
        expected[v as usize] += fraction / ball;
    });
    let mut src = HotspotOrigins::new(vec![center], radius, fraction);
    let mut rng = SmallRng::seed_from_u64(4);
    let mut counts = FrequencyCounter::new(n);
    for _ in 0..150_000 {
        counts.record(src.next_request(&net, &mut rng).origin);
    }
    let stat = counts.chi_squared(&expected);
    let crit = chi_squared_critical(n as usize - 1);
    assert!(stat < crit, "χ²={stat:.1} ≥ critical {crit:.1}");
}

#[test]
fn flash_crowd_pre_window_stream_is_boundary_exact() {
    // Before `start` the boosted source must be *bit-identical* to one
    // whose window lies in the far future: the boost draw may not touch
    // the RNG stream a single request early.
    let net = full_net(10, 40, Popularity::zipf(0.8));
    let start = 500u64;
    let mut boosted = FlashCrowd::new(3, start, 200, 80.0, 0.0);
    let mut baseline = FlashCrowd::new(3, u64::MAX, 200, 80.0, 0.0);
    let mut rng_a = SmallRng::seed_from_u64(9);
    let mut rng_b = SmallRng::seed_from_u64(9);
    for t in 0..start {
        let a = boosted.next_request(&net, &mut rng_a);
        let b = baseline.next_request(&net, &mut rng_b);
        assert_eq!(a, b, "streams diverged at t={t} < start={start}");
    }
    // The very next request enters the window: from here the streams are
    // allowed to (and, at boost 80 on a popular file, will) diverge.
    let mut diverged = false;
    for _ in start..start + 50 {
        let a = boosted.next_request(&net, &mut rng_a);
        let b = baseline.next_request(&net, &mut rng_b);
        diverged |= a != b;
    }
    assert!(diverged, "boost window had no observable effect");
}

#[test]
fn flash_crowd_window_rate_matches_renormalized_boost() {
    // Inside the window, P[hot] = b·w / (1 − w + b·w) exactly; check the
    // realized rate within 4 binomial standard deviations (false-positive
    // probability ≈ 6·10⁻⁵).
    let k = 50u32;
    let net = full_net(12, k, Popularity::zipf(0.8));
    let (hot, boost) = (5u32, 40.0f64);
    let w = net.library().probability(hot);
    let p_hot = boost * w / (1.0 - w + boost * w);
    let mut src = FlashCrowd::new(hot, 0, u64::MAX, boost, 0.0);
    let mut rng = SmallRng::seed_from_u64(11);
    let trials = 60_000u64;
    let mut hits = 0u64;
    for _ in 0..trials {
        if src.next_request(&net, &mut rng).file == hot {
            hits += 1;
        }
    }
    let sigma = (trials as f64 * p_hot * (1.0 - p_hot)).sqrt();
    let dev = (hits as f64 - trials as f64 * p_hot).abs();
    assert!(
        dev < 4.0 * sigma,
        "hot rate {:.4} vs predicted {p_hot:.4} ({dev:.0} > 4σ={:.0})",
        hits as f64 / trials as f64,
        4.0 * sigma
    );
}

#[test]
fn flash_crowd_tau_zero_reverts_exactly_at_window_end() {
    let src = FlashCrowd::new(0, 100, 50, 30.0, 0.0);
    assert_eq!(src.boost_at(99), 1.0);
    assert_eq!(src.boost_at(100), 30.0);
    assert_eq!(src.boost_at(149), 30.0);
    assert_eq!(src.boost_at(150), 1.0, "hard stop must be boundary-exact");
}

#[test]
fn shifting_popularity_rotates_exactly_at_epoch_boundary() {
    let k = 10u32;
    let (epoch, step) = (100u64, 3u32);
    let net = full_net(8, k, Popularity::zipf(1.0));
    let mut src = ShiftingPopularity::new(epoch, step);
    let mut rng = SmallRng::seed_from_u64(5);
    // Requests 0..epoch: rank 0 still maps to file 0.
    for _ in 0..epoch - 1 {
        let _ = src.next_request(&net, &mut rng);
        assert_eq!(src.file_at_rank(0, k), 0);
    }
    // The epoch-th request crosses the boundary: mapping advances by step.
    let _ = src.next_request(&net, &mut rng);
    assert_eq!(src.file_at_rank(0, k), step);
    // And holds for the whole next epoch.
    for _ in 0..epoch - 1 {
        let _ = src.next_request(&net, &mut rng);
        assert_eq!(src.file_at_rank(0, k), step);
    }
    let _ = src.next_request(&net, &mut rng);
    assert_eq!(src.file_at_rank(0, k), 2 * step % k);
}

#[test]
fn time_varying_sources_are_deterministic_given_seed() {
    let net = full_net(9, 20, Popularity::zipf(0.9));
    for seed in [1u64, 7, 42] {
        let mut a = FlashCrowd::new(2, 30, 40, 25.0, 8.0);
        let mut b = FlashCrowd::new(2, 30, 40, 25.0, 8.0);
        let mut ra = SmallRng::seed_from_u64(seed);
        let mut rb = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            assert_eq!(a.next_request(&net, &mut ra), b.next_request(&net, &mut rb));
        }
        let mut a = ShiftingPopularity::new(50, 2);
        let mut b = ShiftingPopularity::new(50, 2);
        let mut ra = SmallRng::seed_from_u64(seed);
        let mut rb = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            assert_eq!(a.next_request(&net, &mut ra), b.next_request(&net, &mut rb));
        }
    }
}
