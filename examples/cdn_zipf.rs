//! CDN scenario: Zipf-popular content, the paper's motivating workload.
//!
//! Web and video libraries follow Zipf laws (paper §II-B, refs [26, 27]).
//! This example sweeps the Zipf exponent γ and shows how skew changes the
//! picture for both strategies: popular files are replicated everywhere,
//! so the nearest-replica cost collapses (Theorem 3 / equation (1)) while
//! hot-content load concentration makes balancing *more* valuable.
//!
//! ```text
//! cargo run --release --example cdn_zipf
//! ```

use paba::prelude::*;
use paba::theory::{nearest_cost_series, CostRegime};
use rand::SeedableRng;

fn main() {
    let gammas = [0.0f64, 0.5, 1.0, 1.5, 2.0, 2.5];
    let (side, k, m) = (45u32, 1000u32, 5u32);
    let runs = 20;

    println!("CDN on a {side}x{side} torus, K = {k} files, M = {m} slots, {runs} runs/γ\n");
    println!(
        "{:>5} | {:^23} | {:^23} | {:>12} | Thm-3 regime",
        "γ", "Strategy I (L, C)", "Strategy II r=8 (L, C)", "eq.(14) C"
    );
    println!("{}", "-".repeat(95));

    for &gamma in &gammas {
        let pop = if gamma == 0.0 {
            Popularity::Uniform
        } else {
            Popularity::zipf(gamma)
        };
        let mut l1 = 0.0;
        let mut c1 = 0.0;
        let mut l2 = 0.0;
        let mut c2 = 0.0;
        for run in 0..runs {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(paba::util::mix_seed(
                777 + run,
                (gamma * 1000.0) as u64,
            ));
            let net = CacheNetwork::builder()
                .torus_side(side)
                .library(k, pop.clone())
                .cache_size(m)
                .build(&mut rng);
            let mut s1 = NearestReplica::new();
            let r1 = simulate(&net, &mut s1, net.n() as u64, &mut rng);
            let mut s2 = ProximityChoice::two_choice(Some(8));
            let r2 = simulate(&net, &mut s2, net.n() as u64, &mut rng);
            l1 += r1.max_load() as f64 / runs as f64;
            c1 += r1.comm_cost() / runs as f64;
            l2 += r2.max_load() as f64 / runs as f64;
            c2 += r2.comm_cost() / runs as f64;
        }
        // The paper's exact cost series (eq. 14, unit constant).
        let weights = pop.weights(k as usize);
        let series = nearest_cost_series(&weights, m);
        let regime = if gamma == 0.0 {
            "Uniform".to_string()
        } else {
            format!("{:?}", CostRegime::classify(gamma))
        };
        println!(
            "{gamma:>5.1} | L={l1:>5.2}  C={c1:>6.2} hops | L={l2:>5.2}  C={c2:>6.2} hops | {series:>12.2} | {regime}"
        );
    }

    println!(
        "\nReading: as γ grows the nearest-replica cost C collapses toward Θ(1/√M) \
         (files you want are\neverywhere), and Strategy II keeps its balance \
         advantage at a few hops of cost — the paper's\npitch for CDN request \
         routing."
    );
}
