//! Flash crowd: one file goes viral, how do the strategies cope?
//!
//! A `FlashCrowd` source boosts one file's popularity by a factor `b`
//! over the whole run. Strategy I (nearest replica) funnels every hot
//! request to the closest of the file's few replicas, so its maximum
//! load explodes linearly with the boost; Strategy II (proximity-aware
//! two-choice) spreads the spike across the hot file's replica set and
//! degrades gracefully.
//!
//! Both strategies serve the *same* recorded request stream per run
//! (record once with `TraceRecorder`, replay via `TraceReplay`), so the
//! comparison isolates the routing policy from workload noise.
//!
//! ```text
//! cargo run --release --example flash_crowd
//! ```

use paba::prelude::*;
use paba::util::Table;
use paba::workload::{FlashCrowd, TraceRecorder, TraceReplay};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let (side, k, m) = (30u32, 200u32, 4u32);
    let runs = 10u64;
    let boosts = [1.0f64, 10.0, 50.0, 200.0];
    let hot_file = 0u32;

    println!(
        "Flash crowd on a {side}x{side} torus, K = {k} files (Zipf 0.8), M = {m} slots, \
         {runs} runs/boost.\nFile {hot_file} is boosted for the entire run; both strategies \
         replay the identical stream.\n"
    );

    let mut table = Table::new([
        "boost",
        "hot share",
        "Strategy I L",
        "Strategy II r=8 L",
        "II/I",
    ]);
    for &boost in &boosts {
        let mut l1 = 0.0;
        let mut l2 = 0.0;
        let mut hot = 0.0;
        for run in 0..runs {
            let mut rng = SmallRng::seed_from_u64(paba::util::mix_seed(2026 + run, boost as u64));
            let net = CacheNetwork::builder()
                .torus_side(side)
                .library(k, Popularity::zipf(0.8))
                .cache_size(m)
                .build(&mut rng);
            let requests = net.n() as u64;

            // Record the flash-crowd stream while Strategy I serves it…
            let mut rec = TraceRecorder::new(FlashCrowd::new(hot_file, 0, requests, boost, 0.0));
            let mut nearest = NearestReplica::new();
            let r1 = simulate_source(&net, &mut nearest, &mut rec, requests, &mut rng);
            let trace = rec.into_trace(&net);
            hot += trace.records.iter().filter(|r| r.file == hot_file).count() as f64
                / requests as f64
                / runs as f64;

            // …then replay the exact same requests through Strategy II.
            let mut replay = TraceReplay::new(trace);
            let mut two = ProximityChoice::two_choice(Some(8));
            let r2 = simulate_source(&net, &mut two, &mut replay, requests, &mut rng);

            l1 += r1.max_load() as f64 / runs as f64;
            l2 += r2.max_load() as f64 / runs as f64;
        }
        table.push_row([
            format!("{boost:.0}x"),
            format!("{:.1}%", 100.0 * hot),
            format!("{l1:.1}"),
            format!("{l2:.1}"),
            format!("{:.2}", l2 / l1),
        ]);
    }
    print!("{}", table.to_markdown());

    println!(
        "\nReading: as the crowd intensifies, Strategy I's max load tracks the hot file's \
         request share\n(every hot request lands on the nearest replica), while proximity-aware \
         two-choice keeps the\nspike spread over the replica set — the balanced-allocations \
         pitch under stress."
    );
}
