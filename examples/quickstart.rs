//! Quickstart: build a cache network, run both strategies, compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use paba::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2017);

    // The paper's Figure-5 network: 45×45 torus (n = 2025), K = 500 files,
    // Uniform popularity, M = 20 cache slots per server.
    let net = CacheNetwork::builder()
        .torus_side(45)
        .library(500, Popularity::Uniform)
        .cache_size(20)
        .build(&mut rng);

    let side = net.topo().side();
    println!(
        "network: n = {} servers (torus {side}x{side}), K = {} files, M = {} slots",
        net.n(),
        net.k(),
        net.m(),
    );
    println!(
        "placement: {} of {} files have at least one replica\n",
        net.cached_file_count(),
        net.k()
    );

    // Strategy I — nearest replica: minimal communication, no balancing.
    let mut nearest = NearestReplica::new();
    let rep1 = simulate(&net, &mut nearest, net.n() as u64, &mut rng);

    // Strategy II — proximity-aware two choices at radius r = 8.
    let mut two_choice = ProximityChoice::two_choice(Some(8));
    let rep2 = simulate(&net, &mut two_choice, net.n() as u64, &mut rng);

    // Strategy II without the proximity constraint (r = ∞).
    let mut unbounded = ProximityChoice::two_choice(None);
    let rep3 = simulate(&net, &mut unbounded, net.n() as u64, &mut rng);

    println!("after n = {} requests:", net.n());
    println!(
        "  {:<34} max load L = {:>2}   comm cost C = {:>6.2} hops",
        "Strategy I  (nearest replica):",
        rep1.max_load(),
        rep1.comm_cost()
    );
    println!(
        "  {:<34} max load L = {:>2}   comm cost C = {:>6.2} hops",
        "Strategy II (2 choices, r = 8):",
        rep2.max_load(),
        rep2.comm_cost()
    );
    println!(
        "  {:<34} max load L = {:>2}   comm cost C = {:>6.2} hops",
        "Strategy II (2 choices, r = inf):",
        rep3.max_load(),
        rep3.comm_cost()
    );

    println!(
        "\nThe paper's trade-off in one run: Strategy II cuts the maximum load \
         (Θ(log log n) vs Θ(log n))\nwhile the radius caps how many extra hops \
         that balance costs (C = Θ(r))."
    );
    println!(
        "fallback fractions: r=8 -> {:.4} (single-candidate or empty-ball events)",
        rep2.fallback_fraction()
    );
}
