//! Scaling demo: watch `Θ(log n)` vs `Θ(log log n)` in action.
//!
//! Runs both strategies across a ladder of network sizes and prints the
//! measured maximum loads next to the theory columns — the content of
//! Theorems 1 and 4 in one table, at laptop scale.
//!
//! ```text
//! cargo run --release --example scaling_demo
//! ```

use paba::prelude::*;
use paba::theory::{one_choice_max_load, two_choice_max_load};
use rand::SeedableRng;

fn main() {
    let sides = [16u32, 23, 32, 45, 64, 91];
    let runs = 25u64;
    println!(
        "K = n (one file per node on average), M = 8, Uniform popularity, {runs} runs/point\n"
    );
    println!(
        "{:>6} | {:>12} | {:>12} | {:>11} | {:>13}",
        "n", "Strategy I L", "Strategy II L", "ln n/lnln n", "lnln n/ln 2"
    );
    println!("{}", "-".repeat(68));

    for &side in &sides {
        let n = side * side;
        let mut l1 = 0.0;
        let mut l2 = 0.0;
        for run in 0..runs {
            let mut rng =
                rand::rngs::SmallRng::seed_from_u64(paba::util::mix_seed(run, side as u64));
            let net = CacheNetwork::builder()
                .torus_side(side)
                .library(n, Popularity::Uniform)
                .cache_size(8)
                .build(&mut rng);
            let mut s1 = NearestReplica::new();
            l1 += simulate(&net, &mut s1, n as u64, &mut rng).max_load() as f64 / runs as f64;
            let mut s2 = ProximityChoice::two_choice(None);
            l2 += simulate(&net, &mut s2, n as u64, &mut rng).max_load() as f64 / runs as f64;
        }
        println!(
            "{n:>6} | {l1:>12.2} | {l2:>12.2} | {:>11.2} | {:>13.2}",
            one_choice_max_load(n as f64),
            two_choice_max_load(n as f64),
        );
    }

    println!(
        "\nReading: Strategy I's column climbs with the ln n/lnln n column (Theorems 1-2);\n\
         Strategy II's barely moves, tracking lnln n (Theorem 4's exponential improvement)."
    );
}
