//! Queueing extension: the §VI conjecture, live.
//!
//! Requests arrive as a Poisson process and servers drain FIFO queues;
//! dispatch uses the same proximity-aware two-choice rule as the static
//! model. Compare queue-length tails against the supermarket-model laws:
//! random dispatch gives `Pr[Q ≥ k] = λ^k`, two choices give the doubly
//! exponential `λ^(2^k − 1)`.
//!
//! ```text
//! cargo run --release --example supermarket_queue
//! ```

use paba::core::{PlacementPolicy, ProximityChoice};
use paba::prelude::*;
use rand::SeedableRng;

fn main() {
    let lambda = 0.9;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(31);
    let net = CacheNetwork::builder()
        .torus_side(24)
        .library(32, Popularity::Uniform)
        .cache_size(32)
        .placement_policy(PlacementPolicy::FullLibrary)
        .build(&mut rng);

    let cfg = QueueSimConfig {
        lambda,
        horizon: 3_000.0,
        warmup: 800.0,
        tail_cap: 16,
        stride: 0,
    };

    println!(
        "supermarket model on n = {} servers, λ = {lambda}, horizon {}\n",
        net.n(),
        cfg.horizon
    );

    let mut random = ProximityChoice::with_choices(Some(4), 1);
    let rep_rand = simulate_queueing(&net, &mut random, &cfg, &mut rng);
    let mut twoc = ProximityChoice::with_choices(Some(4), 2);
    let rep_two = simulate_queueing(&net, &mut twoc, &cfg, &mut rng);

    println!(
        "{:>3} | {:>14} | {:>12} | {:>14} | {:>16}",
        "k", "random Pr[Q>=k]", "theory λ^k", "2-choice Pr[Q>=k]", "theory λ^(2^k-1)"
    );
    println!("{}", "-".repeat(72));
    for k in 1..=6usize {
        println!(
            "{k:>3} | {:>14.4} | {:>12.4} | {:>14.4} | {:>16.4}",
            rep_rand.tail_at(k),
            lambda.powi(k as i32),
            rep_two.tail_at(k),
            lambda.powi((1 << k) - 1),
        );
    }

    println!(
        "\nmax queue: random = {}, two-choice = {}; mean response: {:.2} vs {:.2} \
         (Little's-law checks: {:.2} vs {:.2})",
        rep_rand.max_queue,
        rep_two.max_queue,
        rep_rand.mean_response,
        rep_two.mean_response,
        rep_rand.littles_law_response(),
        rep_two.littles_law_response(),
    );
    println!(
        "comm cost stays ≤ r = 4 for both: {:.2} vs {:.2} hops — the queueing \
         analogue of Theorem 6.",
        rep_rand.comm_cost, rep_two.comm_cost
    );
}
