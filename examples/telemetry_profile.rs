//! Telemetry and tracing, end to end: the compile-tested version of the
//! README's `AtomicRecorder` snippet, extended with a `TraceRecorder`
//! pass that samples per-request events and a load-evolution time series.
//!
//! ```text
//! cargo run --release --example telemetry_profile
//! ```

use paba::prelude::*;
use paba::telemetry::{AtomicRecorder, Sampling, TraceConfig, TraceRecorder};
use paba_core::{simulate_source_profiled, IidUniform};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(2017);
    let net = CacheNetwork::builder()
        .torus_side(30)
        .library(200, Popularity::Uniform)
        .cache_size(8)
        .build(&mut rng);

    // --- Aggregate counters: the README snippet. -----------------------
    let rec = AtomicRecorder::new();
    let mut strat = ProximityChoice::two_choice(Some(5)).with_recorder(&rec);
    let mut source = IidUniform::new();
    simulate_source_profiled(
        &net,
        &mut strat,
        &mut source,
        net.n() as u64,
        &mut rng,
        &rec,
    );
    let snapshot = rec.snapshot(); // counters + histograms, mergeable
    println!("{}", snapshot.table());

    // --- Time-resolved tracing: sampled events + load series. ----------
    let tracer = TraceRecorder::new(TraceConfig {
        sampling: Sampling::OneIn(64), // keep every 64th request
        stride: 128,                   // series point every 128 requests
        max_events: 4096,
        seed: 2017,
    });
    tracer.begin_run(0);
    let mut strat = ProximityChoice::two_choice(Some(5)).with_recorder(&tracer);
    let mut source = IidUniform::new();
    simulate_source_profiled(
        &net,
        &mut strat,
        &mut source,
        net.n() as u64,
        &mut rng,
        &tracer,
    );

    let (runs, _spans, _snapshot) = tracer.into_parts();
    let run = &runs[0];
    println!(
        "sampled {} of {} requests; first event: {:?}",
        run.events.len(),
        run.requests,
        run.events.first()
    );
    println!("load evolution (every {} requests):", run.series.stride);
    for p in &run.series.points {
        println!(
            "  after {:>5} requests: max {:>2.0}, mean {:.3}, p99 {:.0}",
            p.requests, p.max_load, p.mean_load, p.p99
        );
    }
}
