//! Trade-off explorer: pick the smallest radius meeting a target load.
//!
//! Figure 5 of the paper is a design chart: for your cache size `M`, which
//! proximity radius `r` buys which maximum load? This example turns it
//! into a tool — sweep `r`, print the (cost, load) frontier, and report
//! the smallest `r` whose average maximum load is within 10% of the
//! unconstrained (r = ∞) optimum.
//!
//! ```text
//! cargo run --release --example tradeoff_explorer
//! ```

use paba::prelude::*;
use rand::SeedableRng;

fn average_run(side: u32, k: u32, m: u32, radius: Option<u32>, runs: u64) -> (f64, f64) {
    let mut l = 0.0;
    let mut c = 0.0;
    for run in 0..runs {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(paba::util::mix_seed(
            42 + run,
            radius.map_or(u64::MAX, |r| r as u64),
        ));
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng);
        let mut s = ProximityChoice::two_choice(radius);
        let rep = simulate(&net, &mut s, net.n() as u64, &mut rng);
        l += rep.max_load() as f64 / runs as f64;
        c += rep.comm_cost() / runs as f64;
    }
    (l, c)
}

fn main() {
    let (side, k, m) = (45u32, 500u32, 20u32); // the paper's Fig-5 network
    let runs = 30u64;
    println!(
        "Strategy II trade-off on n = {} torus, K = {k}, M = {m} ({runs} runs/point)\n",
        side * side
    );

    let (l_inf, c_inf) = average_run(side, k, m, None, runs);
    println!("unconstrained optimum (r = inf): L = {l_inf:.2}, C = {c_inf:.2} hops\n");

    println!(
        "{:>4} | {:>9} | {:>10} | within 10% of optimum?",
        "r", "max load", "cost/hops"
    );
    println!("{}", "-".repeat(55));
    let mut best: Option<(u32, f64, f64)> = None;
    for r in [1u32, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20] {
        let (l, c) = average_run(side, k, m, Some(r), runs);
        let good = l <= 1.1 * l_inf;
        if good && best.is_none() {
            best = Some((r, l, c));
        }
        println!(
            "{r:>4} | {l:>9.2} | {c:>10.2} | {}",
            if good { "yes" } else { "" }
        );
    }

    match best {
        Some((r, l, c)) => println!(
            "\n=> smallest radius meeting the target: r = {r} (L = {l:.2}, C = {c:.2} hops).\n\
             Theorem 4 predicts r = n^((1-α)/2)·log n suffices — a log-factor above the\n\
             nearest-replica cost Θ(√(K/M)) = {:.1} hops here.",
            (k as f64 / m as f64).sqrt()
        ),
        None => println!("\n=> no finite radius in the sweep met the target; increase M."),
    }
}
