//! # paba — Proximity-Aware Balanced Allocations in Cache Networks
//!
//! A complete Rust reproduction of Pourmiri, Jafari Siavoshani &
//! Shariatpanahi, *"Proximity-Aware Balanced Allocations in Cache
//! Networks"* (IPDPS 2017, arXiv:1610.05961): a cache network of `n`
//! servers on a torus, each holding `M` files from a `K`-file library, and
//! two request-routing strategies —
//!
//! * **Strategy I** ([`core::NearestReplica`]): route to the nearest
//!   replica. Minimum communication cost `Θ(√(K/M))`, but maximum load
//!   `Θ(log n)`.
//! * **Strategy II** ([`core::ProximityChoice`]): route to the
//!   lesser-loaded of two random replicas within distance `r`. In the
//!   paper's regimes, maximum load drops exponentially to
//!   `Θ(log log n)` while cost stays `Θ(r)`.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `paba-core` | cache network, strategies, Voronoi, configuration graph, goodness |
//! | [`topology`] | `paba-topology` | torus/grid metric, balls, rings, CSR graphs |
//! | [`popularity`] | `paba-popularity` | Uniform/Zipf profiles, alias sampling |
//! | [`ballsbins`] | `paba-ballsbins` | one/two/d-choice, graph-based two-choice baselines |
//! | [`theory`] | `paba-theory` | the paper's closed-form predictions |
//! | [`mcrunner`] | `paba-mcrunner` | deterministic parallel Monte-Carlo driver |
//! | [`repro`] | `paba-repro` | theorem-gated reproduction suite + golden artifacts |
//! | [`supermarket`] | `paba-supermarket` | continuous-time queueing extension (§VI) |
//! | [`workload`] | `paba-workload` | pluggable request sources, trace record/replay |
//! | [`telemetry`] | `paba-telemetry` | zero-overhead recorders, tracing, time series, Chrome-trace export |
//!
//! ## Quickstart
//!
//! ```
//! use paba::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(2017);
//! let net = CacheNetwork::builder()
//!     .torus_side(45)                      // n = 2025 servers
//!     .library(500, Popularity::Uniform)   // K = 500 files
//!     .cache_size(20)                      // M = 20 draws per server
//!     .build(&mut rng);
//!
//! // Strategy I: nearest replica.
//! let mut nearest = NearestReplica::new();
//! let rep1 = simulate(&net, &mut nearest, net.n() as u64, &mut rng);
//!
//! // Strategy II: two choices within radius 8.
//! let mut two = ProximityChoice::two_choice(Some(8));
//! let rep2 = simulate(&net, &mut two, net.n() as u64, &mut rng);
//!
//! println!(
//!     "nearest: L={} C={:.2} | two-choice: L={} C={:.2}",
//!     rep1.max_load(), rep1.comm_cost(), rep2.max_load(), rep2.comm_cost(),
//! );
//! # assert!(rep1.max_load() >= 1 && rep2.max_load() >= 1);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/benches/` for
//! the harnesses regenerating every figure and table of the paper.

pub use paba_ballsbins as ballsbins;
pub use paba_churn as churn;
pub use paba_core as core;
pub use paba_dht as dht;
pub use paba_mcrunner as mcrunner;
pub use paba_popularity as popularity;
pub use paba_repro as repro;
pub use paba_supermarket as supermarket;
pub use paba_telemetry as telemetry;
pub use paba_theory as theory;
pub use paba_topology as topology;
pub use paba_util as util;
pub use paba_workload as workload;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use paba_core::prelude::*;
    pub use paba_core::{
        build_config_graph, ConfigGraphMethod, GoodnessReport, ProximityChoice, SimReport,
        UncachedPolicy, VoronoiComputer,
    };
    pub use paba_popularity::Popularity;
    pub use paba_supermarket::{
        simulate_queueing, simulate_queueing_source, QueueSimConfig, SojournHistogram,
    };
    pub use paba_topology::{Topology, Torus};
}
