//! Statistical cross-strategy orderings — the paper's qualitative claims
//! as executable assertions (averaged over enough seeds that a correct
//! implementation fails with negligible probability).
//!
//! Seed counts honour `PABA_TEST_RUNS` (see
//! [`paba::util::envcfg::test_runs`]): defaults are unchanged when unset,
//! CI's quick tier can lower them, nightly can raise them.

use paba::prelude::*;
use paba::util::envcfg::test_runs;
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct Avg {
    load: f64,
    cost: f64,
}

fn average<F: Fn(u64) -> (f64, f64)>(runs: u64, f: F) -> Avg {
    let mut load = 0.0;
    let mut cost = 0.0;
    for s in 0..runs {
        let (l, c) = f(s);
        load += l / runs as f64;
        cost += c / runs as f64;
    }
    Avg { load, cost }
}

fn run_strategy(
    seed: u64,
    side: u32,
    k: u32,
    m: u32,
    kind: &str,
    radius: Option<u32>,
) -> (f64, f64) {
    let mut rng = SmallRng::seed_from_u64(paba::util::mix_seed(seed, side as u64));
    let net = CacheNetwork::builder()
        .torus_side(side)
        .library(k, Popularity::Uniform)
        .cache_size(m)
        .build(&mut rng);
    let rep = match kind {
        "nearest" => {
            let mut s = NearestReplica::new();
            simulate(&net, &mut s, net.n() as u64, &mut rng)
        }
        _ => {
            let mut s = ProximityChoice::two_choice(radius);
            simulate(&net, &mut s, net.n() as u64, &mut rng)
        }
    };
    (rep.max_load() as f64, rep.comm_cost())
}

#[test]
fn two_choice_balances_better_given_replication() {
    // Well-replicated regime (nM/K = 40): the paper's headline ordering.
    let runs = test_runs(24);
    let near = average(runs, |s| run_strategy(s, 20, 50, 5, "nearest", None));
    let two = average(runs, |s| run_strategy(1_000 + s, 20, 50, 5, "two", None));
    assert!(
        two.load < near.load - 0.5,
        "two-choice {:.2} should beat nearest {:.2}",
        two.load,
        near.load
    );
}

#[test]
fn nearest_has_minimal_cost() {
    // No strategy can undercut nearest-replica communication cost.
    let runs = test_runs(16);
    let near = average(runs, |s| run_strategy(s, 20, 100, 4, "nearest", None));
    let two_r = average(runs, |s| run_strategy(500 + s, 20, 100, 4, "two", Some(4)));
    let two_inf = average(runs, |s| run_strategy(900 + s, 20, 100, 4, "two", None));
    assert!(
        near.cost <= two_r.cost + 0.05,
        "{} vs {}",
        near.cost,
        two_r.cost
    );
    assert!(
        two_r.cost < two_inf.cost,
        "{} vs {}",
        two_r.cost,
        two_inf.cost
    );
}

#[test]
fn radius_interpolates_cost_monotonically() {
    // Larger radius → more freedom → higher cost (statistically), while
    // max load weakly improves.
    let runs = test_runs(20);
    let r2 = average(runs, |s| run_strategy(s, 18, 40, 8, "two", Some(2)));
    let r5 = average(runs, |s| run_strategy(s, 18, 40, 8, "two", Some(5)));
    let rinf = average(runs, |s| run_strategy(s, 18, 40, 8, "two", None));
    assert!(r2.cost < r5.cost && r5.cost < rinf.cost);
    assert!(rinf.load <= r2.load + 0.3);
}

#[test]
fn memory_starved_regime_annihilates_two_choice_gain() {
    // Example 2: K = n, M = 1 — the two "choices" are nearly always the
    // same single replica, so Strategy II degenerates toward Strategy I.
    let side = 20u32;
    let n = side * side;
    let runs = test_runs(24);
    let near = average(runs, |s| run_strategy(s, side, n, 1, "nearest", None));
    let two = average(runs, |s| run_strategy(3_000 + s, side, n, 1, "two", None));
    assert!(
        (two.load - near.load).abs() < 1.0,
        "memory-starved two-choice {:.2} should track nearest {:.2}",
        two.load,
        near.load
    );
}

#[test]
fn strategy_ii_cost_tracks_radius() {
    // Theorem 4's C = Θ(r): doubling r roughly doubles the cost while the
    // ball still has plenty of replicas.
    let side = 30u32;
    let runs = test_runs(16);
    let r4 = average(runs, |s| run_strategy(s, side, 20, 10, "two", Some(4)));
    let r8 = average(runs, |s| run_strategy(s, side, 20, 10, "two", Some(8)));
    let ratio = r8.cost / r4.cost;
    assert!(
        (1.5..=2.5).contains(&ratio),
        "cost ratio {ratio:.2} should be ≈ 2"
    );
}

#[test]
fn full_replication_minimizes_load_among_cache_sizes() {
    // More memory (at fixed K) can only help Strategy II.
    let runs = test_runs(20);
    let m1 = average(runs, |s| run_strategy(s, 16, 64, 1, "two", None));
    let m16 = average(runs, |s| run_strategy(7_000 + s, 16, 64, 16, "two", None));
    assert!(
        m16.load <= m1.load,
        "M=16 load {:.2} should be ≤ M=1 load {:.2}",
        m16.load,
        m1.load
    );
}
