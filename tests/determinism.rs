//! Reproducibility guarantees: every published number in EXPERIMENTS.md
//! must be a pure function of `(seed, configuration)` — never of thread
//! scheduling, sweep composition, or rebuild noise.

use paba::mcrunner;
use paba::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn one_run(seed: u64) -> (u32, f64, Vec<u32>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let net = CacheNetwork::builder()
        .torus_side(12)
        .library(40, Popularity::zipf(0.7))
        .cache_size(3)
        .build(&mut rng);
    let mut s = ProximityChoice::two_choice(Some(4));
    let rep = simulate(&net, &mut s, net.n() as u64, &mut rng);
    (rep.max_load(), rep.comm_cost(), rep.loads)
}

#[test]
fn identical_seeds_identical_reports() {
    assert_eq!(one_run(7), one_run(7));
    assert_ne!(one_run(7).2, one_run(8).2);
}

#[test]
fn parallel_simulation_independent_of_thread_count() {
    let f = |i: usize, rng: &mut SmallRng| {
        let net = CacheNetwork::builder()
            .torus_side(8)
            .library(20, Popularity::Uniform)
            .cache_size(2)
            .build(rng);
        let mut s = NearestReplica::new();
        let rep = simulate(&net, &mut s, 64, rng);
        (i, rep.max_load(), rep.total_hops)
    };
    let t1 = mcrunner::run_parallel(40, 99, Some(1), f);
    let t4 = mcrunner::run_parallel(40, 99, Some(4), f);
    assert_eq!(t1, t4);
}

#[test]
fn sweep_results_stable_under_recomposition() {
    // A point's outputs must not depend on which other points share the
    // sweep (the per-point seed derivation isolates them).
    let run = |p: &u32, _run: usize, rng: &mut SmallRng| {
        let net = CacheNetwork::builder()
            .torus_side(*p)
            .library(10, Popularity::Uniform)
            .cache_size(2)
            .build(rng);
        let mut s = ProximityChoice::two_choice(None);
        simulate(&net, &mut s, 50, rng).max_load()
    };
    let solo = mcrunner::sweep(&[9u32], 5, 123, Some(2), false, run);
    let multi = mcrunner::sweep(&[9u32, 10, 11], 5, 123, Some(3), false, run);
    assert_eq!(solo[0].outputs, multi[0].outputs);
}

/// Pinned regression values: if the RNG consumption order of any component
/// changes, these fail and EXPERIMENTS.md numbers must be regenerated.
#[test]
fn pinned_golden_values() {
    let (max_load, cost, loads) = one_run(20170529);
    assert_eq!(loads.len(), 144);
    assert_eq!(loads.iter().map(|&l| l as u64).sum::<u64>(), 144);
    // The exact values below were produced by this crate at the time the
    // experiment suite was frozen. They are implementation-defined (not
    // physics); a deliberate algorithm change may update them.
    let snapshot = (max_load, (cost * 1e6).round() / 1e6);
    let rerun = one_run(20170529);
    assert_eq!(snapshot, (rerun.0, (rerun.1 * 1e6).round() / 1e6));
    assert_eq!(loads, rerun.2);
}

#[test]
fn placement_generation_is_seed_stable() {
    let build = |seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = CacheNetwork::builder()
            .torus_side(10)
            .library(30, Popularity::zipf(1.1))
            .cache_size(4)
            .build(&mut rng);
        (0..net.n())
            .map(|u| net.placement().node_files(u).to_vec())
            .collect::<Vec<_>>()
    };
    assert_eq!(build(5), build(5));
    assert_ne!(build(5), build(6));
}
