//! Reproducibility guarantees: every published number in EXPERIMENTS.md
//! must be a pure function of `(seed, configuration)` — never of thread
//! scheduling, sweep composition, or rebuild noise.

use paba::mcrunner;
use paba::prelude::*;
use paba::workload::{Trace, TraceRecorder, TraceReplay, WorkloadSpec};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn one_run(seed: u64) -> (u32, f64, Vec<u32>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let net = CacheNetwork::builder()
        .torus_side(12)
        .library(40, Popularity::zipf(0.7))
        .cache_size(3)
        .build(&mut rng);
    let mut s = ProximityChoice::two_choice(Some(4));
    let rep = simulate(&net, &mut s, net.n() as u64, &mut rng);
    (rep.max_load(), rep.comm_cost(), rep.loads)
}

#[test]
fn identical_seeds_identical_reports() {
    assert_eq!(one_run(7), one_run(7));
    assert_ne!(one_run(7).2, one_run(8).2);
}

#[test]
fn parallel_simulation_independent_of_thread_count() {
    let f = |i: usize, rng: &mut SmallRng| {
        let net = CacheNetwork::builder()
            .torus_side(8)
            .library(20, Popularity::Uniform)
            .cache_size(2)
            .build(rng);
        let mut s = NearestReplica::new();
        let rep = simulate(&net, &mut s, 64, rng);
        (i, rep.max_load(), rep.total_hops)
    };
    let t1 = mcrunner::run_parallel(40, 99, Some(1), f);
    let t4 = mcrunner::run_parallel(40, 99, Some(4), f);
    assert_eq!(t1, t4);
}

#[test]
fn sweep_results_stable_under_recomposition() {
    // A point's outputs must not depend on which other points share the
    // sweep (the per-point seed derivation isolates them).
    let run = |p: &u32, _run: usize, rng: &mut SmallRng| {
        let net = CacheNetwork::builder()
            .torus_side(*p)
            .library(10, Popularity::Uniform)
            .cache_size(2)
            .build(rng);
        let mut s = ProximityChoice::two_choice(None);
        simulate(&net, &mut s, 50, rng).max_load()
    };
    let solo = mcrunner::sweep(&[9u32], 5, 123, Some(2), false, run);
    let multi = mcrunner::sweep(&[9u32, 10, 11], 5, 123, Some(3), false, run);
    assert_eq!(solo[0].outputs, multi[0].outputs);
}

/// Pinned regression values: if the RNG consumption order of any component
/// changes, these fail and EXPERIMENTS.md numbers must be regenerated.
#[test]
fn pinned_golden_values() {
    let (max_load, cost, loads) = one_run(20170529);
    assert_eq!(loads.len(), 144);
    assert_eq!(loads.iter().map(|&l| l as u64).sum::<u64>(), 144);
    // The exact values below were produced by this crate at the time the
    // experiment suite was frozen. They are implementation-defined (not
    // physics); a deliberate algorithm change may update them.
    let snapshot = (max_load, (cost * 1e6).round() / 1e6);
    let rerun = one_run(20170529);
    assert_eq!(snapshot, (rerun.0, (rerun.1 * 1e6).round() / 1e6));
    assert_eq!(loads, rerun.2);
}

/// Every synthetic workload survives a record → save → load → replay
/// round trip: the reloaded stream is bit-identical to the recorded one
/// (both on-disk formats), and serving it under a fixed strategy seed
/// reproduces the exact `SimReport` of the in-memory stream.
#[test]
fn trace_round_trip_reproduces_stream_and_report_for_every_source() {
    let mut net_rng = SmallRng::seed_from_u64(31);
    let net = CacheNetwork::builder()
        .torus_side(8)
        .library(30, Popularity::zipf(0.8))
        .cache_size(3)
        .build(&mut net_rng);
    let specs = [
        WorkloadSpec::Iid,
        WorkloadSpec::Hotspot {
            hotspots: 3,
            radius: 2,
            fraction: 0.8,
            seed: 5,
        },
        WorkloadSpec::ZipfOrigins { gamma: 1.1 },
        WorkloadSpec::FlashCrowd {
            file: 2,
            start: 20,
            duration: 100,
            boost: 40.0,
            tau: 15.0,
        },
        WorkloadSpec::Shifting { epoch: 50, step: 2 },
    ];
    let dir = std::env::temp_dir().join("paba_determinism_traces");
    std::fs::create_dir_all(&dir).unwrap();
    let requests = 400u64;
    for spec in specs {
        // Generate + record the stream with a dedicated generator RNG.
        let mut gen_rng = SmallRng::seed_from_u64(1234);
        let mut rec = TraceRecorder::new(
            spec.build(&net, UncachedPolicy::ResampleFile)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name())),
        );
        for _ in 0..requests {
            use paba::core::RequestSource;
            rec.next_request(&net, &mut gen_rng);
        }
        let trace = rec.into_trace(&net);
        assert_eq!(trace.len(), requests, "{}", spec.name());

        // Reference report: serve the in-memory stream with a fixed
        // strategy seed (the stream is frozen, so the report is a pure
        // function of that seed).
        let serve = |t: Trace| {
            let mut replay = TraceReplay::new(t);
            replay.check_compat(&net).unwrap();
            let mut s = ProximityChoice::two_choice(Some(4));
            let mut rng = SmallRng::seed_from_u64(4321);
            paba::core::simulate_source(&net, &mut s, &mut replay, requests, &mut rng)
        };
        let reference = serve(trace.clone());

        // Round trip through both on-disk formats: identical stream,
        // identical report.
        for ext in ["trace", "csv"] {
            let path = dir.join(format!("{}.{ext}", spec.name()));
            trace.save(&path).unwrap();
            let loaded = Trace::load(&path).unwrap();
            assert_eq!(trace, loaded, "{} round trip via .{ext}", spec.name());
            assert_eq!(
                reference,
                serve(loaded),
                "{} report via .{ext}",
                spec.name()
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

/// Replaying the same trace with the same strategy seed is exactly
/// reproducible even for a randomized strategy: the stream is frozen, so
/// the report depends only on the strategy RNG.
#[test]
fn randomized_strategy_on_replay_is_seed_stable() {
    let mut rng = SmallRng::seed_from_u64(77);
    let net = CacheNetwork::builder()
        .torus_side(8)
        .library(30, Popularity::zipf(0.8))
        .cache_size(3)
        .build(&mut rng);
    let mut rec = TraceRecorder::new(IidUniform::new());
    let mut warm = NearestReplica::new();
    paba::core::simulate_source(&net, &mut warm, &mut rec, 300, &mut rng);
    let trace = rec.into_trace(&net);

    let run = |seed: u64| {
        let mut replay = TraceReplay::new(trace.clone());
        let mut s = ProximityChoice::two_choice(Some(4));
        let mut rng = SmallRng::seed_from_u64(seed);
        paba::core::simulate_source(&net, &mut s, &mut replay, 300, &mut rng)
    };
    assert_eq!(run(42), run(42));
    assert_eq!(run(42).total_requests, 300);
}

#[test]
fn placement_generation_is_seed_stable() {
    let build = |seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = CacheNetwork::builder()
            .torus_side(10)
            .library(30, Popularity::zipf(1.1))
            .cache_size(4)
            .build(&mut rng);
        (0..net.n())
            .map(|u| net.placement().node_files(u).to_vec())
            .collect::<Vec<_>>()
    };
    assert_eq!(build(5), build(5));
    assert_ne!(build(5), build(6));
}
