//! Static ↔ dynamic consistency for the supermarket extension (§VI):
//! the queueing model embeds the same dispatch logic, so limiting regimes
//! must agree with the static model and with classic queueing theory.

use paba::core::{PlacementPolicy, ProximityChoice};
use paba::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn full_net(side: u32, seed: u64) -> (CacheNetwork<Torus>, SmallRng) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let net = CacheNetwork::builder()
        .torus_side(side)
        .library(8, Popularity::Uniform)
        .cache_size(8)
        .placement_policy(PlacementPolicy::FullLibrary)
        .build(&mut rng);
    (net, rng)
}

#[test]
fn low_load_cost_matches_static_cost() {
    // At λ → 0 queues are empty, so dispatch decisions (and hence hop
    // costs) are distributed exactly like the static strategy's on an
    // unloaded network.
    let (net, mut rng) = full_net(12, 1);
    let cfg = QueueSimConfig {
        lambda: 0.05,
        horizon: 4_000.0,
        warmup: 200.0,
        tail_cap: 8,
        stride: 0,
    };
    let mut strat = ProximityChoice::two_choice(Some(3));
    let queue_rep = simulate_queueing(&net, &mut strat, &cfg, &mut rng);

    let mut static_strat = ProximityChoice::two_choice(Some(3));
    let static_rep = simulate(&net, &mut static_strat, 20_000, &mut rng);
    assert!(
        (queue_rep.comm_cost - static_rep.comm_cost()).abs() < 0.1,
        "dynamic {} vs static {}",
        queue_rep.comm_cost,
        static_rep.comm_cost()
    );
}

#[test]
fn utilization_matches_lambda() {
    // Time-averaged busy fraction (tail at k=1) must equal λ for any
    // stable dispatch policy (work conservation).
    let (net, mut rng) = full_net(10, 2);
    for lambda in [0.3, 0.6, 0.85] {
        let cfg = QueueSimConfig {
            lambda,
            horizon: 6_000.0,
            warmup: 1_000.0,
            tail_cap: 8,
            stride: 0,
        };
        let mut strat = ProximityChoice::two_choice(Some(3));
        let rep = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
        assert!(
            (rep.tail_at(1) - lambda).abs() < 0.04,
            "λ={lambda}: busy fraction {}",
            rep.tail_at(1)
        );
    }
}

#[test]
fn tails_are_monotone_decreasing() {
    let (net, mut rng) = full_net(10, 3);
    let cfg = QueueSimConfig {
        lambda: 0.8,
        horizon: 2_000.0,
        warmup: 300.0,
        tail_cap: 16,
        stride: 0,
    };
    let mut strat = ProximityChoice::two_choice(None);
    let rep = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
    // tail(0) integrates to the window length exactly, up to f64 rounding.
    assert!((rep.tail_at(0) - 1.0).abs() < 1e-9);
    for k in 0..16 {
        assert!(
            rep.tail_at(k) >= rep.tail_at(k + 1) - 1e-12,
            "tail not monotone at {k}"
        );
    }
}

#[test]
fn two_choice_response_time_beats_random_at_high_load() {
    let (net, mut rng) = full_net(14, 4);
    let cfg = QueueSimConfig {
        lambda: 0.9,
        horizon: 2_500.0,
        warmup: 500.0,
        tail_cap: 24,
        stride: 0,
    };
    let mut rand_d1 = ProximityChoice::with_choices(None, 1);
    let rep1 = simulate_queueing(&net, &mut rand_d1, &cfg, &mut rng);
    let mut two = ProximityChoice::two_choice(None);
    let rep2 = simulate_queueing(&net, &mut two, &cfg, &mut rng);
    assert!(
        rep2.mean_response < rep1.mean_response,
        "two-choice response {:.2} should beat random {:.2}",
        rep2.mean_response,
        rep1.mean_response
    );
}
