//! Property-based integration tests: strategy invariants across randomized
//! networks (spanning paba-core / topology / popularity).
//!
//! Implemented as seeded randomized sweeps (no external property framework
//! is available in this build environment); every invariant and parameter
//! range mirrors the original proptest suite.

use paba::core::metrics::FallbackKind;
use paba::core::{PairMode, RadiusFallback, Request, Strategy};
use paba::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic case generator: `n` seeded RNGs, one per property case.
fn cases(seed: u64, n: usize) -> impl Iterator<Item = SmallRng> {
    (0..n).map(move |i| SmallRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9)))
}

/// Strategy-agnostic invariant checks over one simulated delivery phase.
fn check_invariants<S: Strategy<Torus>>(
    net: &CacheNetwork<Torus>,
    strategy: &mut S,
    radius: Option<u32>,
    seed: u64,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut loads = vec![0u32; net.n() as usize];
    for _ in 0..200 {
        let req = Request::sample(net, UncachedPolicy::ResampleFile, &mut rng);
        let a = strategy.assign(net, &loads, req, &mut rng);
        // 1. hops is the true distance.
        assert_eq!(a.hops, net.topo().dist(req.origin, a.server));
        // 2. the server caches the file unless this was an uncached event.
        if a.fallback != Some(FallbackKind::Uncached) {
            assert!(
                net.placement().caches(a.server, req.file),
                "server {} does not cache file {}",
                a.server,
                req.file
            );
        }
        // 3. a finite radius is respected except on declared fallbacks.
        if let Some(r) = radius {
            if a.fallback.is_none() || a.fallback == Some(FallbackKind::SingleCandidate) {
                assert!(a.hops <= r, "in-ball assignment at {} hops > r={r}", a.hops);
            }
        }
        loads[a.server as usize] += 1;
    }
    assert_eq!(loads.iter().map(|&l| l as u64).sum::<u64>(), 200);
}

#[test]
fn nearest_replica_invariants() {
    for mut case in cases(0xA1, 24) {
        let side = case.gen_range(4u32..12);
        let k = case.gen_range(1u32..60);
        let m = case.gen_range(1u32..8);
        let seed = case.gen_range(0u64..1_000);
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng);
        let mut s = NearestReplica::new();
        check_invariants(&net, &mut s, None, seed ^ 0xdead);
    }
}

#[test]
fn proximity_choice_invariants() {
    for mut case in cases(0xA2, 24) {
        let side = case.gen_range(4u32..12);
        let k = case.gen_range(1u32..60);
        let m = case.gen_range(1u32..8);
        let radius = case.gen_range(0u32..10);
        let d = case.gen_range(1u32..5);
        let seed = case.gen_range(0u64..1_000);
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng);
        let mut s = ProximityChoice::with_choices(Some(radius), d);
        check_invariants(&net, &mut s, Some(radius), seed ^ 0xbeef);
    }
}

#[test]
fn proximity_unbounded_invariants() {
    for mut case in cases(0xA3, 24) {
        let side = case.gen_range(4u32..12);
        let k = case.gen_range(1u32..60);
        let m = case.gen_range(1u32..8);
        let seed = case.gen_range(0u64..1_000);
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::zipf(0.8))
            .cache_size(m)
            .build(&mut rng);
        let mut s = ProximityChoice::two_choice(None).pair_mode(PairMode::WithReplacement);
        check_invariants(&net, &mut s, None, seed ^ 0xf00d);
    }
}

#[test]
fn nearest_is_actually_nearest() {
    for mut case in cases(0xA4, 24) {
        let side = case.gen_range(4u32..10);
        let k = case.gen_range(1u32..40);
        let m = case.gen_range(1u32..6);
        let seed = case.gen_range(0u64..500);
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng);
        let mut s = NearestReplica::new();
        let loads = vec![0u32; net.n() as usize];
        for _ in 0..50 {
            let req = Request::sample(&net, UncachedPolicy::ResampleFile, &mut rng);
            let a = s.assign(&net, &loads, req, &mut rng);
            for v in 0..net.n() {
                if net.placement().caches(v, req.file) {
                    assert!(
                        net.topo().dist(req.origin, v) >= a.hops,
                        "found closer replica {v}"
                    );
                }
            }
        }
    }
}

#[test]
fn serve_at_origin_fallback_never_travels() {
    // Sparse placement + tiny radius + ServeAtOrigin: every declared
    // empty-ball fallback must stay at the origin with 0 hops.
    for mut case in cases(0xA5, 24) {
        let side = case.gen_range(4u32..9);
        let seed = case.gen_range(0u64..500);
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(200, Popularity::Uniform)
            .cache_size(1)
            .build(&mut rng);
        let mut s =
            ProximityChoice::two_choice(Some(1)).radius_fallback(RadiusFallback::ServeAtOrigin);
        let loads = vec![0u32; net.n() as usize];
        for _ in 0..100 {
            let req = Request::sample(&net, UncachedPolicy::ResampleFile, &mut rng);
            let a = s.assign(&net, &loads, req, &mut rng);
            if a.fallback == Some(FallbackKind::NoCandidateInBall) {
                assert_eq!(a.server, req.origin);
                assert_eq!(a.hops, 0);
            }
        }
    }
}

#[test]
fn simulation_conserves_and_bounds() {
    for mut case in cases(0xA6, 24) {
        let side = case.gen_range(4u32..12);
        let k = case.gen_range(1u32..60);
        let m = case.gen_range(1u32..8);
        let requests = case.gen_range(0u64..800);
        let seed = case.gen_range(0u64..1_000);
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng);
        let mut s = ProximityChoice::two_choice(Some(3));
        let rep = simulate(&net, &mut s, requests, &mut rng);
        assert!(rep.check_conservation());
        assert_eq!(rep.total_requests, requests);
        assert!(rep.max_load() as u64 <= requests);
        assert!(rep.comm_cost() <= net.topo().diameter() as f64);
        // The load histogram must count every server.
        assert_eq!(rep.load_histogram().total(), net.n() as u64);
    }
}
