//! Property-based integration tests: strategy invariants across randomized
//! networks (proptest-driven, spanning paba-core / topology / popularity).

use paba::prelude::*;
use paba::core::{PairMode, RadiusFallback, Request, Strategy};
use paba::core::metrics::FallbackKind;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strategy-agnostic invariant checks over one simulated delivery phase.
fn check_invariants<S: Strategy<Torus>>(
    net: &CacheNetwork<Torus>,
    strategy: &mut S,
    radius: Option<u32>,
    seed: u64,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut loads = vec![0u32; net.n() as usize];
    for _ in 0..200 {
        let req = Request::sample(net, UncachedPolicy::ResampleFile, &mut rng);
        let a = strategy.assign(net, &loads, req, &mut rng);
        // 1. hops is the true distance.
        assert_eq!(a.hops, net.topo().dist(req.origin, a.server));
        // 2. the server caches the file unless this was an uncached event.
        if a.fallback != Some(FallbackKind::Uncached) {
            assert!(
                net.placement().caches(a.server, req.file),
                "server {} does not cache file {}",
                a.server,
                req.file
            );
        }
        // 3. a finite radius is respected except on declared fallbacks.
        if let Some(r) = radius {
            if a.fallback.is_none() || a.fallback == Some(FallbackKind::SingleCandidate) {
                assert!(a.hops <= r, "in-ball assignment at {} hops > r={r}", a.hops);
            }
        }
        loads[a.server as usize] += 1;
    }
    assert_eq!(loads.iter().map(|&l| l as u64).sum::<u64>(), 200);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn nearest_replica_invariants(
        side in 4u32..12,
        k in 1u32..60,
        m in 1u32..8,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng);
        let mut s = NearestReplica::new();
        check_invariants(&net, &mut s, None, seed ^ 0xdead);
    }

    #[test]
    fn proximity_choice_invariants(
        side in 4u32..12,
        k in 1u32..60,
        m in 1u32..8,
        radius in 0u32..10,
        d in 1u32..5,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng);
        let mut s = ProximityChoice::with_choices(Some(radius), d);
        check_invariants(&net, &mut s, Some(radius), seed ^ 0xbeef);
    }

    #[test]
    fn proximity_unbounded_invariants(
        side in 4u32..12,
        k in 1u32..60,
        m in 1u32..8,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::zipf(0.8))
            .cache_size(m)
            .build(&mut rng);
        let mut s = ProximityChoice::two_choice(None)
            .pair_mode(PairMode::WithReplacement);
        check_invariants(&net, &mut s, None, seed ^ 0xf00d);
    }

    #[test]
    fn nearest_is_actually_nearest(
        side in 4u32..10,
        k in 1u32..40,
        m in 1u32..6,
        seed in 0u64..500,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng);
        let mut s = NearestReplica::new();
        let loads = vec![0u32; net.n() as usize];
        for _ in 0..50 {
            let req = Request::sample(&net, UncachedPolicy::ResampleFile, &mut rng);
            let a = s.assign(&net, &loads, req, &mut rng);
            for v in 0..net.n() {
                if net.placement().caches(v, req.file) {
                    prop_assert!(
                        net.topo().dist(req.origin, v) >= a.hops,
                        "found closer replica {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn serve_at_origin_fallback_never_travels(
        side in 4u32..9,
        seed in 0u64..500,
    ) {
        // Sparse placement + tiny radius + ServeAtOrigin: every declared
        // empty-ball fallback must stay at the origin with 0 hops.
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(200, Popularity::Uniform)
            .cache_size(1)
            .build(&mut rng);
        let mut s = ProximityChoice::two_choice(Some(1))
            .radius_fallback(RadiusFallback::ServeAtOrigin);
        let loads = vec![0u32; net.n() as usize];
        for _ in 0..100 {
            let req = Request::sample(&net, UncachedPolicy::ResampleFile, &mut rng);
            let a = s.assign(&net, &loads, req, &mut rng);
            if a.fallback == Some(FallbackKind::NoCandidateInBall) {
                prop_assert_eq!(a.server, req.origin);
                prop_assert_eq!(a.hops, 0);
            }
        }
    }

    #[test]
    fn simulation_conserves_and_bounds(
        side in 4u32..12,
        k in 1u32..60,
        m in 1u32..8,
        requests in 0u64..800,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng);
        let mut s = ProximityChoice::two_choice(Some(3));
        let rep = simulate(&net, &mut s, requests, &mut rng);
        prop_assert!(rep.check_conservation());
        prop_assert_eq!(rep.total_requests, requests);
        prop_assert!(rep.max_load() as u64 <= requests);
        prop_assert!(rep.comm_cost() <= net.topo().diameter() as f64);
        // The load histogram must count every server.
        prop_assert_eq!(rep.load_histogram().total(), net.n() as u64);
    }
}
