//! Theory ↔ simulation consistency: the paper's closed forms must predict
//! what the simulator measures (up to documented Θ-constants).

use paba::prelude::*;
use paba::theory;
use paba::util::envcfg::test_runs;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn mean_cost_nearest(side: u32, k: u32, m: u32, pop: &Popularity, runs: u64) -> f64 {
    let mut total = 0.0;
    for s in 0..runs {
        let mut rng = SmallRng::seed_from_u64(paba::util::mix_seed(s, k as u64 + m as u64));
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(k, pop.clone())
            .cache_size(m)
            .build(&mut rng);
        let mut strat = NearestReplica::new();
        total += simulate(&net, &mut strat, net.n() as u64, &mut rng).comm_cost();
    }
    total / runs as f64
}

#[test]
fn uniform_cost_scales_like_sqrt_k_over_m() {
    // Theorem 3: C = Θ(√(K/M)). The ratio between (K,M) pairs with a 4×
    // different K/M must be ≈ 2.
    let runs = test_runs(10);
    let c_base = mean_cost_nearest(45, 200, 8, &Popularity::Uniform, runs);
    let c_4x = mean_cost_nearest(45, 800, 8, &Popularity::Uniform, runs);
    let ratio = c_4x / c_base;
    assert!(
        (1.7..=2.3).contains(&ratio),
        "√(K/M) scaling broken: {ratio:.2}"
    );
}

#[test]
fn measured_cost_proportional_to_exact_series() {
    // Eq. (14) with a single geometry constant should explain all (K, M):
    // fit the constant on one configuration, predict the others within 25%.
    let configs = [(100u32, 2u32), (400, 4), (900, 3), (1600, 8)];
    let mut ratios = Vec::new();
    for &(k, m) in &configs {
        let measured = mean_cost_nearest(45, k, m, &Popularity::Uniform, test_runs(8));
        let weights = vec![1.0 / k as f64; k as usize];
        let series = theory::nearest_cost_series(&weights, m);
        ratios.push(measured / series);
    }
    let first = ratios[0];
    for (i, r) in ratios.iter().enumerate() {
        assert!(
            (r / first - 1.0).abs() < 0.25,
            "geometry constant drifts: {ratios:?} at config {i}"
        );
    }
}

#[test]
fn zipf_saturated_regime_cost_independent_of_k() {
    // γ = 2.5 (Saturated): quadrupling K must not move the cost much.
    let pop = Popularity::zipf(2.5);
    let runs = test_runs(10);
    let c1 = mean_cost_nearest(45, 400, 4, &pop, runs);
    let c2 = mean_cost_nearest(45, 1600, 4, &pop, runs);
    assert!(
        (c1 / c2 - 1.0).abs() < 0.25,
        "saturated-regime cost moved: {c1:.3} vs {c2:.3}"
    );
}

#[test]
fn goodness_parameters_hold_in_lemma2_regime() {
    use paba::core::GoodnessReport;
    let side = 32u32;
    let n = side * side;
    let alpha = 0.25f64;
    let m = (n as f64).powf(alpha).round() as u32;
    for seed in 0..test_runs(5) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(n, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng);
        let rep = GoodnessReport::measure(&net, Some(5));
        assert!(
            rep.is_good(theory::goodness_delta(alpha), theory::goodness_mu(alpha)),
            "seed {seed}: min t(u)={}, max t(u,v)={}",
            rep.min_t_u,
            rep.max_t_uv
        );
    }
}

#[test]
fn config_graph_degree_matches_lemma3_prediction() {
    use paba::core::{build_config_graph, ConfigGraphMethod};
    let side = 32u32;
    let n = side * side;
    let (m, r) = (23u32, 6u32);
    let mut rng = SmallRng::seed_from_u64(11);
    let net = CacheNetwork::builder()
        .torus_side(side)
        .library(n, Popularity::Uniform)
        .cache_size(m)
        .build(&mut rng);
    let h = build_config_graph(&net, Some(r), ConfigGraphMethod::Auto);
    let b2r = Torus::new(side).ball_size(2 * r) as f64 - 1.0;
    let p_share = 1.0 - (1.0 - m as f64 / n as f64).powi(m as i32);
    let predict = b2r * p_share;
    let mean = h.degree_stats().mean;
    assert!(
        (mean / predict - 1.0).abs() < 0.2,
        "Δ prediction off: measured {mean:.1} vs {predict:.1}"
    );
    // Almost-regularity: max/min within a constant factor.
    assert!(h.regularity_ratio() < 3.0, "ratio {}", h.regularity_ratio());
}

#[test]
fn kp_theorem5_bound_respected_by_graph_process() {
    // On a dense circulant graph the measured max load must sit below the
    // (loose) KP bound and above the two-choice floor.
    let n = 4096u32;
    let g = paba::topology::circulant_graph(n, 64); // Δ = 128
    let mut worst = 0u32;
    for seed in 0..5 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let res = paba::ballsbins::graph_two_choice(&g, n as u64, &mut rng);
        worst = worst.max(res.max_load());
    }
    let bound = theory::kp_max_load_bound(n as f64, 128.0);
    if bound.is_finite() {
        assert!(
            (worst as f64) <= bound.max(6.0),
            "KP bound violated: {worst} > {bound:.1}"
        );
    }
    assert!(worst >= 2, "suspiciously perfect balance");
}
