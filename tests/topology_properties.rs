//! Property-based topology validation across the whole supported parameter
//! space — metric axioms, ball/ring/brute-force agreement, and Voronoi
//! consistency, on both the torus and the bounded grid.
//!
//! Implemented as seeded exhaustive-ish sweeps (no external property
//! framework is available in this build environment); every property and
//! parameter range mirrors the original proptest suite.

use paba::core::VoronoiComputer;
use paba::topology::{Grid, Torus};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic case generator: `cases` draws from seeded ranges.
fn cases(seed: u64, n: usize) -> impl Iterator<Item = SmallRng> {
    (0..n).map(move |i| SmallRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9)))
}

#[test]
fn torus_metric_axioms() {
    for mut rng in cases(1, 48) {
        let side = rng.gen_range(1u32..16);
        let t = Torus::new(side);
        let n = t.n();
        let (a, b, c) = (
            rng.gen_range(0..256u32) % n,
            rng.gen_range(0..256u32) % n,
            rng.gen_range(0..256u32) % n,
        );
        assert_eq!(t.dist(a, a), 0);
        assert_eq!(t.dist(a, b), t.dist(b, a));
        assert!(t.dist(a, c) <= t.dist(a, b) + t.dist(b, c));
        assert!(t.dist(a, b) <= t.diameter());
        if a != b {
            assert!(t.dist(a, b) > 0);
        }
    }
}

#[test]
fn torus_ball_is_exact() {
    for mut rng in cases(2, 48) {
        let side = rng.gen_range(1u32..12);
        let t = Torus::new(side);
        let u = rng.gen_range(0..144u32) % t.n();
        let r = rng.gen_range(0u32..30);
        let mut got = t.ball_nodes(u, r);
        got.sort_unstable();
        let expect: Vec<u32> = (0..t.n()).filter(|&v| t.dist(u, v) <= r).collect();
        assert_eq!(got, expect, "side={side} u={u} r={r}");
        assert_eq!(t.ball_size(r), expect.len() as u64);
    }
}

#[test]
fn torus_ring_partitions_ball() {
    for mut rng in cases(3, 48) {
        let side = rng.gen_range(2u32..12);
        let t = Torus::new(side);
        let u = rng.gen_range(0..144u32) % t.n();
        let r = rng.gen_range(0u32..18);
        // The ball is the disjoint union of rings 0..=r.
        let mut from_rings: Vec<u32> = Vec::new();
        for d in 0..=r {
            t.for_each_at_distance(u, d, |v| from_rings.push(v));
        }
        from_rings.sort_unstable();
        let mut ball = t.ball_nodes(u, r);
        ball.sort_unstable();
        assert_eq!(from_rings, ball, "side={side} u={u} r={r}");
    }
}

#[test]
fn grid_ball_is_exact() {
    for mut rng in cases(4, 48) {
        let side = rng.gen_range(1u32..12);
        let g = Grid::new(side);
        let u = rng.gen_range(0..144u32) % g.n();
        let r = rng.gen_range(0u32..30);
        let mut got = g.ball_nodes(u, r);
        got.sort_unstable();
        let expect: Vec<u32> = (0..g.n()).filter(|&v| g.dist(u, v) <= r).collect();
        assert_eq!(got, expect, "side={side} u={u} r={r}");
        assert_eq!(g.ball_size_at(u, r), expect.len() as u64);
    }
}

#[test]
fn grid_dominated_by_torus_distance() {
    // Wrapping can only shorten paths.
    for mut rng in cases(5, 48) {
        let side = rng.gen_range(2u32..12);
        let g = Grid::new(side);
        let t = Torus::new(side);
        let a = rng.gen_range(0..144u32) % g.n();
        let b = rng.gen_range(0..144u32) % g.n();
        assert!(t.dist(a, b) <= g.dist(a, b), "side={side} a={a} b={b}");
    }
}

#[test]
fn ball_sampling_stays_inside() {
    for mut rng in cases(6, 48) {
        let side = rng.gen_range(2u32..12);
        let t = Torus::new(side);
        let u = rng.gen_range(0..144u32) % t.n();
        let r = rng.gen_range(0u32..20);
        let mut draw_rng = SmallRng::seed_from_u64(rng.gen_range(0u64..1000));
        for _ in 0..32 {
            let v = t.sample_in_ball(u, r, &mut draw_rng);
            assert!(t.dist(u, v) <= r, "side={side} u={u} r={r} v={v}");
        }
    }
}

#[test]
fn voronoi_owners_are_nearest() {
    for mut rng in cases(7, 48) {
        let side = rng.gen_range(2u32..10);
        let t = Torus::new(side);
        let n_src = rng.gen_range(1usize..6);
        let sources: Vec<u32> = (0..n_src)
            .map(|_| rng.gen_range(0..100u32) % t.n())
            .collect();
        let mut vc = VoronoiComputer::new(t.n());
        let cells = vc.compute(&t, &sources);
        for v in 0..t.n() {
            let best = sources.iter().map(|&s| t.dist(s, v)).min().unwrap();
            assert_eq!(cells.dist[v as usize], best);
            assert_eq!(t.dist(cells.owner[v as usize], v), best);
        }
        // Cells partition the torus.
        let total: u32 = cells.cell_sizes().values().sum();
        assert_eq!(total, t.n());
    }
}

#[test]
fn ring_sizes_sum_to_n() {
    for side in 1u32..14 {
        let t = Torus::new(side);
        let total: u64 = (0..=t.diameter()).map(|d| t.ring_size(d)).sum();
        assert_eq!(total, t.n() as u64);
    }
}
