//! Property-based topology validation across the whole supported parameter
//! space — metric axioms, ball/ring/brute-force agreement, and Voronoi
//! consistency, on both the torus and the bounded grid.

use paba::core::VoronoiComputer;
use paba::topology::{Grid, Torus};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn torus_metric_axioms(side in 1u32..16, pts in prop::collection::vec(0u32..256, 3)) {
        let t = Torus::new(side);
        let n = t.n();
        let (a, b, c) = (pts[0] % n, pts[1] % n, pts[2] % n);
        prop_assert_eq!(t.dist(a, a), 0);
        prop_assert_eq!(t.dist(a, b), t.dist(b, a));
        prop_assert!(t.dist(a, c) <= t.dist(a, b) + t.dist(b, c));
        prop_assert!(t.dist(a, b) <= t.diameter());
        if a != b {
            prop_assert!(t.dist(a, b) > 0);
        }
    }

    #[test]
    fn torus_ball_is_exact(side in 1u32..12, u in 0u32..144, r in 0u32..30) {
        let t = Torus::new(side);
        let u = u % t.n();
        let mut got = t.ball_nodes(u, r);
        got.sort_unstable();
        let expect: Vec<u32> = (0..t.n()).filter(|&v| t.dist(u, v) <= r).collect();
        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(t.ball_size(r), expect.len() as u64);
    }

    #[test]
    fn torus_ring_partitions_ball(side in 2u32..12, u in 0u32..144, r in 0u32..18) {
        let t = Torus::new(side);
        let u = u % t.n();
        // The ball is the disjoint union of rings 0..=r.
        let mut from_rings: Vec<u32> = Vec::new();
        for d in 0..=r {
            t.for_each_at_distance(u, d, |v| from_rings.push(v));
        }
        from_rings.sort_unstable();
        let mut ball = t.ball_nodes(u, r);
        ball.sort_unstable();
        prop_assert_eq!(from_rings, ball);
    }

    #[test]
    fn grid_ball_is_exact(side in 1u32..12, u in 0u32..144, r in 0u32..30) {
        let g = Grid::new(side);
        let u = u % g.n();
        let mut got = g.ball_nodes(u, r);
        got.sort_unstable();
        let expect: Vec<u32> = (0..g.n()).filter(|&v| g.dist(u, v) <= r).collect();
        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(g.ball_size_at(u, r), expect.len() as u64);
    }

    #[test]
    fn grid_dominated_by_torus_distance(side in 2u32..12, a in 0u32..144, b in 0u32..144) {
        // Wrapping can only shorten paths.
        let g = Grid::new(side);
        let t = Torus::new(side);
        let (a, b) = (a % g.n(), b % g.n());
        prop_assert!(t.dist(a, b) <= g.dist(a, b));
    }

    #[test]
    fn ball_sampling_stays_inside(side in 2u32..12, u in 0u32..144, r in 0u32..20, seed in 0u64..1000) {
        let t = Torus::new(side);
        let u = u % t.n();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..32 {
            let v = t.sample_in_ball(u, r, &mut rng);
            prop_assert!(t.dist(u, v) <= r);
        }
    }

    #[test]
    fn voronoi_owners_are_nearest(side in 2u32..10, srcs in prop::collection::vec(0u32..100, 1..6)) {
        let t = Torus::new(side);
        let sources: Vec<u32> = srcs.iter().map(|&s| s % t.n()).collect();
        let mut vc = VoronoiComputer::new(t.n());
        let cells = vc.compute(&t, &sources);
        for v in 0..t.n() {
            let best = sources.iter().map(|&s| t.dist(s, v)).min().unwrap();
            prop_assert_eq!(cells.dist[v as usize], best);
            prop_assert_eq!(t.dist(cells.owner[v as usize], v), best);
        }
        // Cells partition the torus.
        let total: u32 = cells.cell_sizes().values().sum();
        prop_assert_eq!(total, t.n());
    }

    #[test]
    fn ring_sizes_sum_to_n(side in 1u32..14) {
        let t = Torus::new(side);
        let total: u64 = (0..=t.diameter()).map(|d| t.ring_size(d)).sum();
        prop_assert_eq!(total, t.n() as u64);
    }
}
