//! Minimal, dependency-free stand-in for the `criterion` benchmark crate.
//!
//! The build environment has no registry access; this shim implements the
//! subset of the criterion 0.5 API the workspace's benches use
//! ([`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`]/[`criterion_main!`]) with a simple
//! median-of-batches timer. Good enough to compile, run, and give coarse
//! wall-clock numbers; swap back to the real crate when a registry is
//! available.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterized benchmark case.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter` naming.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier carrying only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timing driver handed to every benchmark closure.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then the timed batch.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples;
    }

    fn per_iter(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iters as u32
        }
    }
}

fn report(name: &str, b: &Bencher) {
    println!(
        "{name:<48} {:>12.3?}/iter ({} iters)",
        b.per_iter(),
        b.iters
    );
}

/// Top-level benchmark registry (shim: runs benches eagerly).
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Configure measurement time (accepted, ignored by the shim).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.parent.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.parent.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Override the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1) as u64;
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declare a benchmark group: both the `name/config/targets` struct form
/// and the positional form of criterion 0.5 are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Produce the `main` that runs the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("t", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 4); // 1 warm-up + 3 timed
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
