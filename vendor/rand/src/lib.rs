//! Minimal, dependency-free stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! exactly the surface it uses: the [`Rng`]/[`RngCore`]/[`SeedableRng`]
//! traits, [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64 — the
//! same generator family `rand 0.8` uses for `SmallRng` on 64-bit
//! targets), uniform `gen_range` over integer and float ranges, and
//! [`seq::SliceRandom`] shuffling. Streams are deterministic per seed and
//! statistically sound (Lemire widening-multiply range reduction; 53-bit
//! mantissa floats), which is all the workspace's reproducibility and
//! χ²-style tests require.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (high word of [`RngCore::next_u64`]).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// range; `bool`: fair coin).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// If the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types constructible from raw random bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Highest bit: avoids any low-bit linearity a generator might have.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform dyadic rational in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as $u).wrapping_add(off as $u) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64 as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (start as $u).wrapping_add(off as $u) as $t
            }
        }
    )*};
}
impl_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * <$t as Standard>::sample_standard(rng)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                start + (end - start) * <$t as Standard>::sample_standard(rng)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++ (Blackman &
    /// Vigna), seeded through SplitMix64 exactly like `rand 0.8`'s
    /// 64-bit `SmallRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state fill: guarantees a non-zero xoshiro state.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias for the default generator (same engine as [`SmallRng`] here).
    pub type StdRng = SmallRng;
}

pub mod seq {
    //! Slice sampling and shuffling.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn xoshiro256pp_reference_vector() {
        // First outputs of xoshiro256++ from the state {1, 2, 3, 4}
        // (cross-checked against the public-domain C reference).
        let mut g = SmallRng { s: [1, 2, 3, 4] };
        use super::RngCore;
        assert_eq!(g.next_u64(), 41943041);
        assert_eq!(g.next_u64(), 58720359);
        assert_eq!(g.next_u64(), 3588806011781223);
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut g = SmallRng::seed_from_u64(42);
            (0..8).map(|_| g.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut g = SmallRng::seed_from_u64(42);
            (0..8).map(|_| g.gen::<u64>()).collect()
        };
        let c: Vec<u64> = {
            let mut g = SmallRng::seed_from_u64(43);
            (0..8).map(|_| g.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_bounds_and_uniformity() {
        let mut g = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[g.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_400..=10_600).contains(&c), "{counts:?}");
        }
        for _ in 0..1000 {
            let v = g.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&v));
            let f = g.gen_range(2.0..5.0f64);
            assert!((2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_and_bools() {
        let mut g = SmallRng::seed_from_u64(3);
        let mut heads = 0u32;
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = g.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            if g.gen::<bool>() {
                heads += 1;
            }
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
        assert!((4_500..=5_500).contains(&heads));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut g);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should not be identity");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..1000u64)
        }
        let mut g = SmallRng::seed_from_u64(1);
        assert!(takes_dynish(&mut g) < 1000);
    }
}
